//! The **distribution** `γ_w(P)` of a permutation (Section IV).
//!
//! The distribution is the average, over the `n/w` warps of the
//! destination-designated algorithm, of the number of distinct global
//! address groups the warp's writes touch:
//!
//! ```text
//! γ_w(P) = (w/n) · Σ_j |{ ⌊P[i]/w⌋ : i ∈ warp j }|
//! ```
//!
//! `γ_w ∈ [1, w]`: 1 for the identical permutation (each warp writes one
//! group) and `w` for bit-reversal or transpose (each warp scatters to `w`
//! groups). Lemma 4 prices the conventional algorithms' casual round at
//! `γ_w(P)·n/w + l − 1` time units, which is why the conventional
//! algorithm's running time tracks the distribution while the scheduled
//! algorithm's does not.

use crate::permutation::Permutation;

/// The distribution `γ_w(P)` (average distinct destination groups per
/// warp). Returns 0.0 for an empty permutation.
pub fn distribution(p: &Permutation, width: usize) -> f64 {
    assert!(width > 0, "width must be positive");
    let n = p.len();
    if n == 0 {
        return 0.0;
    }
    let mut total_groups = 0usize;
    let mut warps = 0usize;
    let mut scratch: Vec<usize> = Vec::with_capacity(width);
    for warp in p.as_slice().chunks(width) {
        scratch.clear();
        scratch.extend(warp.iter().map(|&d| d / width));
        scratch.sort_unstable();
        scratch.dedup();
        total_groups += scratch.len();
        warps += 1;
    }
    total_groups as f64 / warps as f64
}

/// The normalized distribution `ρ_w(P) = γ_w(P)/w ∈ [1/w, 1]`, the quantity
/// reported in the paper's Table III (≈ 0.9999 for random permutations of
/// 4M elements).
pub fn normalized_distribution(p: &Permutation, width: usize) -> f64 {
    distribution(p, width) / width as f64
}

/// Histogram of per-warp distinct-destination-group counts: `hist[g - 1]`
/// = number of warps that touch exactly `g` groups (`g ∈ 1..=width`).
/// The distribution `γ_w` is the mean of this histogram; the histogram
/// itself shows whether a permutation is uniformly bad (bit-reversal: all
/// warps at `w`) or mixed.
pub fn warp_group_histogram(p: &Permutation, width: usize) -> Vec<usize> {
    assert!(width > 0, "width must be positive");
    let mut hist = vec![0usize; width];
    let mut scratch: Vec<usize> = Vec::with_capacity(width);
    for warp in p.as_slice().chunks(width) {
        scratch.clear();
        scratch.extend(warp.iter().map(|&d| d / width));
        scratch.sort_unstable();
        scratch.dedup();
        hist[scratch.len() - 1] += 1;
    }
    hist
}

/// The index of the warp with the most distinct destination groups, with
/// its group count — the straggler that bounds the casual round under a
/// max-based (rather than sum-based) dispatch model.
pub fn worst_warp(p: &Permutation, width: usize) -> Option<(usize, usize)> {
    assert!(width > 0, "width must be positive");
    let mut best: Option<(usize, usize)> = None;
    let mut scratch: Vec<usize> = Vec::with_capacity(width);
    for (w_idx, warp) in p.as_slice().chunks(width).enumerate() {
        scratch.clear();
        scratch.extend(warp.iter().map(|&d| d / width));
        scratch.sort_unstable();
        scratch.dedup();
        if best.map(|(_, g)| scratch.len() > g).unwrap_or(true) {
            best = Some((w_idx, scratch.len()));
        }
    }
    best
}

/// Expected distribution of a uniformly random permutation: each of the `w`
/// destinations of a warp falls in one of `n/w` groups nearly independently,
/// so `E[γ_w] ≈ w·(n/w)·(1 − (1 − w/n·1/w)^w)/...`; we use the exact
/// birthday-style formula `g·(1 − (1 − 1/g)^w)` with `g = n/w` groups.
///
/// Used by tests to check that measured distributions of random
/// permutations land where theory predicts.
pub fn expected_random_distribution(n: usize, width: usize) -> f64 {
    if n == 0 || width == 0 {
        return 0.0;
    }
    let g = (n as f64 / width as f64).max(1.0);
    g * (1.0 - (1.0 - 1.0 / g).powi(width as i32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    const W: usize = 32;
    const N: usize = 1 << 14;

    #[test]
    fn identical_has_distribution_one() {
        let p = families::identical(N);
        assert_eq!(distribution(&p, W), 1.0);
        assert_eq!(normalized_distribution(&p, W), 1.0 / W as f64);
    }

    #[test]
    fn shuffle_has_distribution_two() {
        // A warp of w consecutive indices maps to 2w consecutive even/odd
        // slots spanning exactly 2 groups (paper: γ(shuffle) = 2).
        let p = families::shuffle(N).unwrap();
        assert_eq!(distribution(&p, W), 2.0);
    }

    #[test]
    fn bit_reversal_has_distribution_w() {
        let p = families::bit_reversal(N).unwrap();
        assert_eq!(distribution(&p, W), W as f64);
        assert_eq!(normalized_distribution(&p, W), 1.0);
    }

    #[test]
    fn transpose_has_distribution_w() {
        let p = families::transpose_square(1 << 14).unwrap();
        assert_eq!(distribution(&p, W), W as f64);
    }

    #[test]
    fn random_distribution_is_nearly_w() {
        // Paper Table III: ρ_w ≈ 0.9999 for 4M; at n = 16K it is lower but
        // still close to 1, and should match the birthday-problem formula
        // within a small tolerance.
        let p = families::random(N, 7);
        let got = distribution(&p, W);
        let want = expected_random_distribution(N, W);
        assert!(
            (got - want).abs() < 0.15,
            "measured {got}, expected ≈ {want}"
        );
        assert!(got > 30.0 && got <= 32.0);
    }

    #[test]
    fn distribution_bounds_hold_for_all_families() {
        for n in [256usize, 512, 1024] {
            for fam in families::Family::ALL {
                let p = fam.build(n, 1).unwrap();
                let g = distribution(&p, W);
                assert!((1.0..=W as f64).contains(&g), "{} n={n}: γ={g}", fam.name());
            }
        }
    }

    #[test]
    fn rotation_distribution_at_most_two() {
        for shift in [1usize, 5, 31, 32, 100] {
            let p = families::rotation(N, shift);
            assert!(distribution(&p, W) <= 2.0, "shift {shift}");
        }
    }

    #[test]
    fn partial_last_warp_is_counted() {
        // n = 48, w = 32: two warps (32 + 16 lanes).
        let p = crate::permutation::Permutation::identity(48);
        let g = distribution(&p, 32);
        // Warp 0 touches group 0; warp 1 touches group 1 -> average 1.0.
        assert_eq!(g, 1.0);
    }

    #[test]
    fn histogram_sums_to_warp_count_and_averages_to_gamma() {
        for fam in families::Family::ALL {
            let p = fam.build(N, 2).unwrap();
            let hist = warp_group_histogram(&p, W);
            let warps: usize = hist.iter().sum();
            assert_eq!(warps, N / W, "{}", fam.name());
            let mean: f64 = hist
                .iter()
                .enumerate()
                .map(|(g, &count)| (g + 1) as f64 * count as f64)
                .sum::<f64>()
                / warps as f64;
            assert!(
                (mean - distribution(&p, W)).abs() < 1e-9,
                "{}: {mean} vs γ",
                fam.name()
            );
        }
    }

    #[test]
    fn histogram_extremes() {
        let hist = warp_group_histogram(&families::identical(N), W);
        assert_eq!(hist[0], N / W); // all warps touch one group
        let hist = warp_group_histogram(&families::bit_reversal(N).unwrap(), W);
        assert_eq!(hist[W - 1], N / W); // all warps touch w groups
    }

    #[test]
    fn worst_warp_finds_the_max() {
        let p = families::identical(N);
        assert_eq!(worst_warp(&p, W).unwrap().1, 1);
        let p = families::bit_reversal(N).unwrap();
        assert_eq!(worst_warp(&p, W).unwrap().1, W);
        assert!(worst_warp(&crate::permutation::Permutation::identity(0), W).is_none());
    }

    #[test]
    fn empty_permutation_distribution_zero() {
        let p = crate::permutation::Permutation::identity(0);
        assert_eq!(distribution(&p, 32), 0.0);
    }

    #[test]
    fn expected_random_distribution_limits() {
        // With 1 group everything collides.
        assert!((expected_random_distribution(32, 32) - 1.0).abs() < 1e-9);
        // With many groups the expectation approaches w.
        assert!(expected_random_distribution(1 << 22, 32) > 31.99);
        assert_eq!(expected_random_distribution(0, 32), 0.0);
    }
}
