//! The named permutation families used in the paper's evaluation (Section
//! IV) plus a few classics from the same application domains (sorting
//! networks, FFTs, hypercube emulation).

use crate::error::{PermError, Result};
use crate::matrix::{gf2_rank, Bmmc};
use crate::permutation::Permutation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of bits of a power-of-two size.
fn log2_exact(n: usize) -> Result<u32> {
    if n == 0 || !n.is_power_of_two() {
        return Err(PermError::NotPowerOfTwo { n });
    }
    Ok(n.trailing_zeros())
}

/// Reverse the low `bits` bits of `i`.
#[inline]
pub fn reverse_bits(i: usize, bits: u32) -> usize {
    if bits == 0 {
        0
    } else {
        i.reverse_bits() >> (usize::BITS - bits)
    }
}

/// The **identical** permutation: `P[i] = i`. Distribution `γ_w = 1`.
pub fn identical(n: usize) -> Permutation {
    Permutation::identity(n)
}

/// The **shuffle** permutation (Section IV): with `i = b_{k-1} ... b_1 b_0`,
/// `shuffle(i) = b_{k-2} ... b_0 b_{k-1}` — a one-bit left rotation, used
/// for shuffle-exchange in sorting networks. Requires a power-of-two `n`.
/// Distribution `γ_w = 2`.
pub fn shuffle(n: usize) -> Result<Permutation> {
    let k = log2_exact(n)?;
    if k == 0 {
        return Ok(Permutation::identity(n));
    }
    let map = (0..n)
        .map(|i| ((i << 1) | (i >> (k - 1))) & (n - 1))
        .collect();
    Ok(Permutation::from_vec_unchecked(map))
}

/// The inverse of [`shuffle`]: a one-bit right rotation (often called
/// *unshuffle*). Requires a power-of-two `n`.
pub fn unshuffle(n: usize) -> Result<Permutation> {
    let k = log2_exact(n)?;
    if k == 0 {
        return Ok(Permutation::identity(n));
    }
    let map = (0..n).map(|i| (i >> 1) | ((i & 1) << (k - 1))).collect();
    Ok(Permutation::from_vec_unchecked(map))
}

/// The **bit-reversal** permutation (Section IV): reverse the binary
/// representation, as used by FFT data reordering. Requires a power-of-two
/// `n`. Distribution `γ_w = w` for `n >= w²`.
pub fn bit_reversal(n: usize) -> Result<Permutation> {
    let k = log2_exact(n)?;
    let map = (0..n).map(|i| reverse_bits(i, k)).collect();
    Ok(Permutation::from_vec_unchecked(map))
}

/// The **transpose** permutation (Section IV) for a `rows × cols` row-major
/// matrix: the element at `(i, j)` (index `i*cols + j`) moves to `(j, i)`
/// (index `j*rows + i`). Distribution `γ_w = w` for `rows, cols >= w`.
pub fn transpose(rows: usize, cols: usize, n: usize) -> Result<Permutation> {
    if rows == 0 || cols == 0 || rows * cols != n {
        return Err(PermError::BadShape { n, rows, cols });
    }
    let mut map = vec![0usize; n];
    for i in 0..rows {
        for j in 0..cols {
            map[i * cols + j] = j * rows + i;
        }
    }
    Ok(Permutation::from_vec_unchecked(map))
}

/// Square transpose: `√n × √n`; `n` must be an even power of two (or any
/// perfect square).
pub fn transpose_square(n: usize) -> Result<Permutation> {
    let side = (n as f64).sqrt().round() as usize;
    if side * side != n {
        return Err(PermError::BadShape {
            n,
            rows: side,
            cols: side,
        });
    }
    transpose(side, side, n)
}

/// A uniformly **random** permutation drawn from a seeded generator, so the
/// harness's "1000 random permutations" of Table III are reproducible.
pub fn random(n: usize, seed: u64) -> Permutation {
    let mut rng = StdRng::seed_from_u64(seed);
    Permutation::random(n, &mut rng)
}

/// A seeded **random BMMC** shuffle: a uniformly sampled invertible
/// GF(2) bit matrix plus a random offset, i.e. a random member of the
/// affine group the structured plan emitter recognizes. This is the
/// "bijective index function" shuffle workload: unlike [`random`], the
/// engine's whole pipeline for it stays closed-form — descriptor-sized
/// plan files, computed-index kernels, no gather map ever loaded — while
/// still scattering elements across the full array. Requires a
/// power-of-two `n`; deterministic per seed.
pub fn random_bmmc(n: usize, seed: u64) -> Result<Permutation> {
    Ok(random_bmmc_matrix(n, seed)?.to_permutation())
}

/// The [`Bmmc`] form of [`random_bmmc`] — for callers that want the
/// O(log² n) matrix itself (e.g. to register a permutation over the wire
/// without materializing the index array).
///
/// Rejection-sampled: uniform random columns are kept only when they
/// form an invertible matrix. A uniform random k×k GF(2) matrix is
/// invertible with probability `∏(1 − 2⁻ⁱ) ≈ 0.289`, so this takes ~3.5
/// draws in expectation, each O(log² n) — negligible at any size.
pub fn random_bmmc_matrix(n: usize, seed: u64) -> Result<Bmmc> {
    let k = log2_exact(n)?;
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let cols: Vec<usize> = (0..k).map(|_| rng.gen_range(0..n)).collect();
        if gf2_rank(&cols) == k as usize {
            let offset = rng.gen_range(0..n);
            return Bmmc::from_cols(cols, offset);
        }
    }
}

/// Cyclic **rotation** by `shift`: `P[i] = (i + shift) mod n`. Distribution
/// `γ_w ≤ 2` — a cheap permutation the conventional algorithm is good at.
pub fn rotation(n: usize, shift: usize) -> Permutation {
    if n == 0 {
        return Permutation::identity(0);
    }
    Permutation::from_vec_unchecked((0..n).map(|i| (i + shift) % n).collect())
}

/// One **butterfly** stage: `P[i] = i XOR (1 << stage)` — the exchange
/// pattern of stage `stage` of an FFT or hypercube network. Requires a
/// power-of-two `n` and `stage < log2 n`.
pub fn butterfly(n: usize, stage: u32) -> Result<Permutation> {
    let k = log2_exact(n)?;
    if stage >= k {
        return Err(PermError::BadShape {
            n,
            rows: 1 << stage,
            cols: 0,
        });
    }
    let mask = 1usize << stage;
    Ok(Permutation::from_vec_unchecked(
        (0..n).map(|i| i ^ mask).collect(),
    ))
}

/// The binary-reflected **Gray code** ordering: `P[i] = i ^ (i >> 1)`.
/// Requires a power-of-two `n`.
pub fn gray_code(n: usize) -> Result<Permutation> {
    log2_exact(n)?;
    Ok(Permutation::from_vec_unchecked(
        (0..n).map(|i| i ^ (i >> 1)).collect(),
    ))
}

/// The five families evaluated in the paper's Table II, in table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// `P[i] = i`.
    Identical,
    /// One-bit left rotation of the index bits.
    Shuffle,
    /// Uniformly random (seeded).
    Random,
    /// Index bit reversal.
    BitReversal,
    /// Square matrix transpose.
    Transpose,
}

impl Family {
    /// All five families in the paper's row order.
    pub const ALL: [Family; 5] = [
        Family::Identical,
        Family::Shuffle,
        Family::Random,
        Family::BitReversal,
        Family::Transpose,
    ];

    /// The family's name as printed in Table II.
    pub fn name(self) -> &'static str {
        match self {
            Family::Identical => "identical",
            Family::Shuffle => "shuffle",
            Family::Random => "random",
            Family::BitReversal => "bit-reversal",
            Family::Transpose => "transpose",
        }
    }

    /// Build the family's permutation of size `n` (`seed` only affects
    /// [`Family::Random`]). For [`Family::Transpose`] with non-square `n`
    /// (odd power of two), a `√(n/2) × √(2n)` rectangular transpose is used
    /// so every Table II size is covered.
    pub fn build(self, n: usize, seed: u64) -> Result<Permutation> {
        match self {
            Family::Identical => Ok(identical(n)),
            Family::Shuffle => shuffle(n),
            Family::Random => Ok(random(n, seed)),
            Family::BitReversal => bit_reversal(n),
            Family::Transpose => {
                let k = log2_exact(n)?;
                let rows = 1usize << (k / 2);
                transpose(rows, n / rows, n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_rotates_left() {
        // n = 8 (k = 3): 0b011 -> 0b110, 0b100 -> 0b001.
        let p = shuffle(8).unwrap();
        assert_eq!(p.apply(0b011), 0b110);
        assert_eq!(p.apply(0b100), 0b001);
        assert_eq!(p.apply(0), 0);
        assert_eq!(p.apply(7), 7);
    }

    #[test]
    fn unshuffle_inverts_shuffle() {
        for n in [2usize, 4, 16, 64, 1024] {
            let s = shuffle(n).unwrap();
            let u = unshuffle(n).unwrap();
            assert_eq!(s.compose(&u), Permutation::identity(n), "n = {n}");
            assert_eq!(u.compose(&s), Permutation::identity(n), "n = {n}");
        }
    }

    #[test]
    fn bit_reversal_is_an_involution() {
        for n in [2usize, 8, 256, 4096] {
            let p = bit_reversal(n).unwrap();
            assert_eq!(p.compose(&p), Permutation::identity(n), "n = {n}");
        }
    }

    #[test]
    fn bit_reversal_known_values() {
        let p = bit_reversal(8).unwrap();
        // 0b001 -> 0b100, 0b011 -> 0b110, 0b101 -> 0b101.
        assert_eq!(p.apply(1), 4);
        assert_eq!(p.apply(3), 6);
        assert_eq!(p.apply(5), 5);
    }

    #[test]
    fn transpose_square_is_an_involution() {
        let p = transpose_square(16).unwrap();
        assert_eq!(p.compose(&p), Permutation::identity(16));
        // (0,1) at index 1 -> (1,0) at index 4.
        assert_eq!(p.apply(1), 4);
    }

    #[test]
    fn rectangular_transpose_roundtrips_via_swapped_shape() {
        let p = transpose(4, 8, 32).unwrap();
        let q = transpose(8, 4, 32).unwrap();
        assert_eq!(q.compose(&p), Permutation::identity(32));
    }

    #[test]
    fn transpose_rejects_bad_shapes() {
        assert!(transpose(3, 5, 16).is_err());
        assert!(transpose(0, 4, 0).is_err());
        assert!(transpose_square(12).is_err());
    }

    #[test]
    fn power_of_two_required_where_documented() {
        assert!(shuffle(12).is_err());
        assert!(unshuffle(0).is_err());
        assert!(bit_reversal(24).is_err());
        assert!(gray_code(3).is_err());
        assert!(butterfly(12, 0).is_err());
    }

    #[test]
    fn butterfly_is_an_involution_per_stage() {
        for stage in 0..4 {
            let p = butterfly(16, stage).unwrap();
            assert_eq!(p.compose(&p), Permutation::identity(16));
        }
        assert!(butterfly(16, 4).is_err());
    }

    #[test]
    fn gray_code_neighbors_differ_in_one_bit() {
        let p = gray_code(64).unwrap();
        for i in 0..63 {
            let diff = p.apply(i) ^ p.apply(i + 1);
            assert_eq!(diff.count_ones(), 1, "i = {i}");
        }
    }

    #[test]
    fn rotation_wraps() {
        let p = rotation(5, 2);
        assert_eq!(p.as_slice(), &[2, 3, 4, 0, 1]);
        assert!(rotation(0, 3).is_empty());
        assert!(rotation(5, 0).is_identity());
        assert!(rotation(5, 5).is_identity());
    }

    #[test]
    fn random_is_seed_deterministic() {
        assert_eq!(random(128, 5), random(128, 5));
        assert_ne!(random(128, 5), random(128, 6));
    }

    #[test]
    fn random_bmmc_is_affine_and_seed_deterministic() {
        let n = 1 << 10;
        let p = random_bmmc(n, 7).unwrap();
        assert_eq!(p, random_bmmc(n, 7).unwrap());
        assert_ne!(p, random_bmmc(n, 8).unwrap());
        // By construction the recognizer must accept it and recover the
        // same matrix the generator sampled.
        let bmmc = p.as_bmmc().expect("random BMMC is affine");
        let sampled = random_bmmc_matrix(n, 7).unwrap();
        assert_eq!(bmmc.to_permutation(), sampled.to_permutation());
        // Non-power-of-two sizes are a typed error.
        assert!(random_bmmc(12, 1).is_err());
        assert!(random_bmmc(0, 1).is_err());
    }

    #[test]
    fn random_bmmc_statistical_smoke() {
        // The affine group is far smaller than S_n, but a random member
        // should still look like a real shuffle: almost no fixed points
        // and displacements spread across the whole array, not clustered
        // near the identity.
        let n = 1usize << 12;
        let seeds = 16u64;
        let mut total_fixed = 0usize;
        let mut disp_sum = 0.0f64;
        let mut gap_sum = 0.0f64;
        for seed in 0..seeds {
            let p = random_bmmc(n, seed).unwrap();
            total_fixed += p.fixed_points();
            // Mean |P[i] − i| (a uniform random permutation scores n/3).
            disp_sum += (0..n)
                .map(|i| (p.apply(i) as f64 - i as f64).abs())
                .sum::<f64>()
                / n as f64;
            // Pairwise-distance spread: consecutive sources should land
            // far apart on average (the shuffle breaks locality).
            gap_sum += (0..n - 1)
                .map(|i| (p.apply(i) as f64 - p.apply(i + 1) as f64).abs())
                .sum::<f64>()
                / (n - 1) as f64;
        }
        let (mean_disp, mean_gap) = (disp_sum / seeds as f64, gap_sum / seeds as f64);
        assert!(
            mean_disp > n as f64 / 6.0,
            "mean displacement {mean_disp:.1}"
        );
        assert!(
            mean_gap > n as f64 / 8.0,
            "mean neighbour gap {mean_gap:.1}"
        );
        // A random permutation of n elements has ~1 fixed point in
        // expectation; affine samples should stay in the same regime.
        assert!(
            total_fixed < 16 * seeds as usize,
            "{total_fixed} fixed points in {seeds} draws"
        );
    }

    #[test]
    fn family_builders_cover_table_sizes() {
        // Table II uses powers of two from 256K to 4M; test miniatures with
        // both even and odd exponents.
        for n in [256usize, 512, 1024, 2048, 4096] {
            for fam in Family::ALL {
                let p = fam.build(n, 42).unwrap();
                assert_eq!(p.len(), n, "{} n={n}", fam.name());
            }
        }
    }

    #[test]
    fn family_names_match_paper() {
        let names: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            vec![
                "identical",
                "shuffle",
                "random",
                "bit-reversal",
                "transpose"
            ]
        );
    }

    #[test]
    fn reverse_bits_edge_cases() {
        assert_eq!(reverse_bits(0, 0), 0);
        assert_eq!(reverse_bits(1, 1), 1);
        assert_eq!(reverse_bits(0b0001, 4), 0b1000);
    }

    #[test]
    fn shuffle_of_two_elements() {
        let p = shuffle(2).unwrap();
        assert!(p.is_identity()); // rotating 1 bit is the identity
    }
}
