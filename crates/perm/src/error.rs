//! Errors for permutation construction and use.

use core::fmt;

/// Errors raised when building or applying permutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermError {
    /// The mapping is not a bijection on `0..n`.
    NotABijection {
        /// Size of the domain.
        len: usize,
        /// First index observed twice (or out of range) as an image.
        offender: usize,
    },
    /// A slice passed to `permute`/`gather` does not match the permutation's
    /// length.
    LengthMismatch {
        /// The permutation's length.
        expected: usize,
        /// The slice's length.
        got: usize,
    },
    /// A family requires a power-of-two size (shuffle, bit-reversal, ...).
    NotPowerOfTwo {
        /// The offending size.
        n: usize,
    },
    /// A matrix-shaped family was given a size that does not factor into the
    /// requested shape.
    BadShape {
        /// Total elements.
        n: usize,
        /// Requested rows.
        rows: usize,
        /// Requested cols.
        cols: usize,
    },
    /// No `rows x cols` factorization with both sides multiples of `w`
    /// exists for this `n`.
    NoValidShape {
        /// Total elements.
        n: usize,
        /// The width both factors must be a multiple of.
        width: usize,
    },
    /// A GF(2) bit matrix is not invertible, so the affine index map it
    /// defines cannot be a permutation.
    SingularMatrix {
        /// Number of index bits (the matrix is `bits × bits`).
        bits: u32,
    },
}

impl fmt::Display for PermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermError::NotABijection { len, offender } => {
                write!(f, "mapping on 0..{len} is not a bijection (at {offender})")
            }
            PermError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "slice length {got} does not match permutation length {expected}"
                )
            }
            PermError::NotPowerOfTwo { n } => {
                write!(f, "size {n} is not a power of two")
            }
            PermError::BadShape { n, rows, cols } => {
                write!(f, "{rows}x{cols} does not tile {n} elements")
            }
            PermError::NoValidShape { n, width } => {
                write!(
                    f,
                    "no rows x cols factorization of {n} with both sides multiples of {width}"
                )
            }
            PermError::SingularMatrix { bits } => {
                write!(f, "{bits}x{bits} GF(2) bit matrix is not invertible")
            }
        }
    }
}

impl std::error::Error for PermError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PermError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PermError::NotABijection {
            len: 4,
            offender: 2
        }
        .to_string()
        .contains("bijection"));
        assert!(PermError::NotPowerOfTwo { n: 12 }
            .to_string()
            .contains("12"));
        assert!(PermError::NoValidShape { n: 40, width: 16 }
            .to_string()
            .contains("16"));
    }
}
