//! # hmm-perm — permutations for the offline-permutation reproduction
//!
//! Everything the ICPP 2013 evaluation needs to talk about permutations:
//!
//! * a validated [`Permutation`] type in the paper's destination convention
//!   (`b[P[i]] = a[i]`) with inverse, composition, cycle decomposition, and
//!   in-place application;
//! * the five evaluated [`families`] (identical, shuffle, random,
//!   bit-reversal, transpose) plus classics from the same application
//!   domains (unshuffle, rotation, butterfly stages, Gray code);
//! * the warp [`distribution`](mod@distribution) metric `γ_w(P)` of Section IV that predicts
//!   the conventional algorithm's running time (Lemma 4);
//! * [`matrix`] shape helpers for viewing a flat array as the `√n × √n`
//!   (or `r × 2r`) matrix the scheduled algorithm operates on, and the
//!   affine bit-matrix [`Bmmc`] family (with the
//!   [`Permutation::as_bmmc`] recognizer) behind the structured-plan
//!   fast paths in `hmm-plan`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distribution;
pub mod error;
pub mod families;
pub mod matrix;
pub mod permutation;
pub mod tensor;

pub use distribution::{
    distribution, expected_random_distribution, normalized_distribution, warp_group_histogram,
    worst_warp,
};
pub use error::{PermError, Result};
pub use families::Family;
pub use matrix::{scheduled_shape, Bmmc, MatrixShape};
pub use permutation::Permutation;
pub use tensor::{direct_sum, stride, tensor};
