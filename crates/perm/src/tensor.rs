//! Tensor (Kronecker) structure on permutations: stride permutations and
//! products.
//!
//! The structured permutation families of Section IV are all members of
//! the *stride permutation* algebra used in FFT and sorting-network theory
//! (cf. the paper's reference to shuffle/exchange-type networks): the
//! shuffle is `L(n, n/2)`, the matrix transpose is `L(n, cols)`, and
//! multistage networks factor into tensor products of small permutations.
//! Having the algebra lets applications *compose* schedules instead of
//! tabulating them.

use crate::error::{PermError, Result};
use crate::families;
use crate::permutation::Permutation;

/// The stride permutation `L(n, m)` ("load with stride `m`"): viewing the
/// array as an `(n/m) × m` row-major matrix, transpose it. Index
/// `i ↦ (i mod m)·(n/m) + ⌊i/m⌋`. Requires `m` to divide `n`.
pub fn stride(n: usize, m: usize) -> Result<Permutation> {
    match n.checked_div(m) {
        Some(rows) if n > 0 && n.is_multiple_of(m) => families::transpose(rows, m, n),
        _ => Err(PermError::BadShape {
            n,
            rows: n.checked_div(m).unwrap_or(0),
            cols: m,
        }),
    }
}

/// The tensor (Kronecker) product `p ⊗ q`: acts on `|p|·|q|` elements by
/// permuting the `|q|`-blocks with `p` and the contents of each block
/// with `q`: `a·|q| + b ↦ p(a)·|q| + q(b)`.
pub fn tensor(p: &Permutation, q: &Permutation) -> Permutation {
    let (np, nq) = (p.len(), q.len());
    let mut map = Vec::with_capacity(np * nq);
    for a in 0..np {
        let base = p.apply(a) * nq;
        for b in 0..nq {
            map.push(base + q.apply(b));
        }
    }
    Permutation::from_vec_unchecked(map)
}

/// The direct sum `p ⊕ q`: `p` on the first `|p|` elements, `q` shifted
/// onto the rest.
pub fn direct_sum(p: &Permutation, q: &Permutation) -> Permutation {
    let np = p.len();
    let mut map = Vec::with_capacity(np + q.len());
    map.extend(p.as_slice().iter().copied());
    map.extend(q.as_slice().iter().map(|&d| d + np));
    Permutation::from_vec_unchecked(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_is_the_matrix_transpose() {
        let l = stride(24, 6).unwrap();
        let t = families::transpose(4, 6, 24).unwrap();
        assert_eq!(l, t);
        // Known values: L(6,2): 0,2,4 then 1,3,5 inverted... check directly:
        let l62 = stride(6, 2).unwrap();
        // i=0->0, i=1->3, i=2->1, i=3->4, i=4->2, i=5->5.
        assert_eq!(l62.as_slice(), &[0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn stride_inverse_identity() {
        // L(n,m)⁻¹ = L(n, n/m).
        for (n, m) in [(16usize, 2usize), (16, 4), (24, 6), (60, 5)] {
            assert_eq!(
                stride(n, m).unwrap().inverse(),
                stride(n, n / m).unwrap(),
                "n={n} m={m}"
            );
        }
    }

    #[test]
    fn shuffle_is_stride_n_over_2() {
        for n in [4usize, 16, 256] {
            assert_eq!(
                families::shuffle(n).unwrap(),
                stride(n, n / 2).unwrap(),
                "n = {n}"
            );
            assert_eq!(
                families::unshuffle(n).unwrap(),
                stride(n, 2).unwrap(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn tensor_of_identities_is_identity() {
        let p = tensor(&Permutation::identity(4), &Permutation::identity(8));
        assert!(p.is_identity());
        assert_eq!(p.len(), 32);
    }

    #[test]
    fn tensor_with_identity_acts_blockwise() {
        let swap = Permutation::from_vec(vec![1, 0]).unwrap();
        // swap ⊗ id_3 exchanges the two 3-blocks.
        let p = tensor(&swap, &Permutation::identity(3));
        assert_eq!(p.as_slice(), &[3, 4, 5, 0, 1, 2]);
        // id_3 ⊗ swap swaps within each 2-block.
        let q = tensor(&Permutation::identity(3), &swap);
        assert_eq!(q.as_slice(), &[1, 0, 3, 2, 5, 4]);
    }

    #[test]
    fn tensor_is_associative_and_respects_inverse() {
        let p = families::random(4, 1);
        let q = families::random(3, 2);
        let r = families::random(5, 3);
        assert_eq!(tensor(&tensor(&p, &q), &r), tensor(&p, &tensor(&q, &r)));
        assert_eq!(tensor(&p, &q).inverse(), tensor(&p.inverse(), &q.inverse()));
    }

    #[test]
    fn tensor_composition_is_componentwise() {
        // (p1 ⊗ q1) ∘ (p2 ⊗ q2) = (p1∘p2) ⊗ (q1∘q2).
        let p1 = families::random(4, 4);
        let p2 = families::random(4, 5);
        let q1 = families::random(6, 6);
        let q2 = families::random(6, 7);
        assert_eq!(
            tensor(&p1, &q1).compose(&tensor(&p2, &q2)),
            tensor(&p1.compose(&p2), &q1.compose(&q2))
        );
    }

    #[test]
    fn commutation_theorem() {
        // The defining property of stride permutations: conjugating a
        // tensor product by strides swaps the factors. In destination-map
        // terms (compose applies its argument first):
        // L(mn, n) ∘ (p ⊗ q) ∘ L(mn, m) = q ⊗ p.
        let p = families::random(4, 8);
        let q = families::random(8, 9);
        let (m, n) = (p.len(), q.len());
        let l_m = stride(m * n, m).unwrap(); // applied first
        let l_n = stride(m * n, n).unwrap(); // applied last
        let lhs = l_n.compose(&tensor(&p, &q)).compose(&l_m);
        assert_eq!(lhs, tensor(&q, &p));
    }

    #[test]
    fn direct_sum_blocks() {
        let p = Permutation::from_vec(vec![1, 0]).unwrap();
        let q = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let s = direct_sum(&p, &q);
        assert_eq!(s.as_slice(), &[1, 0, 4, 2, 3]);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn stride_rejects_bad_args() {
        assert!(stride(10, 3).is_err());
        assert!(stride(0, 2).is_err());
        assert!(stride(8, 0).is_err());
    }

    #[test]
    fn bit_reversal_factors_into_shuffles() {
        // Classic: R_{2^k} = Π_{s=0}^{k-1} (I_{2^s} ⊗ L(2^{k-s}, 2)).
        let k = 6usize;
        let n = 1usize << k;
        let mut acc = Permutation::identity(n);
        for s in 0..k {
            let block = tensor(
                &Permutation::identity(1 << s),
                &stride(1 << (k - s), 2).unwrap(),
            );
            // Move along the coarsest stride first: acc = block ∘ acc.
            acc = block.compose(&acc);
        }
        assert_eq!(acc, families::bit_reversal(n).unwrap());
    }
}
