//! The validated [`Permutation`] type and its algebra.
//!
//! A permutation `P` of `{0, 1, ..., n-1}` is stored in **destination
//! convention**, matching the paper's Section IV: `P[i]` is the index that
//! element `i` of the source array moves *to*, i.e. the offline permutation
//! task is `b[P[i]] = a[i]` for all `i`.

use crate::error::{PermError, Result};
use crate::matrix::Bmmc;
use rand::seq::SliceRandom;
use rand::Rng;

/// A validated permutation of `0..n` in destination convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    map: Vec<usize>,
}

impl Permutation {
    /// Build from an explicit mapping, validating that it is a bijection.
    pub fn from_vec(map: Vec<usize>) -> Result<Self> {
        let n = map.len();
        let mut seen = vec![false; n];
        for &dst in &map {
            if dst >= n || seen[dst] {
                return Err(PermError::NotABijection {
                    len: n,
                    offender: dst,
                });
            }
            seen[dst] = true;
        }
        Ok(Permutation { map })
    }

    /// Build without validation. The caller must guarantee bijectivity; the
    /// invariant is checked in debug builds.
    pub fn from_vec_unchecked(map: Vec<usize>) -> Self {
        debug_assert!(Self::from_vec(map.clone()).is_ok());
        Permutation { map }
    }

    /// The identity permutation of size `n` ("identical" in the paper).
    pub fn identity(n: usize) -> Self {
        Permutation {
            map: (0..n).collect(),
        }
    }

    /// A uniformly random permutation of size `n`.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut map: Vec<usize> = (0..n).collect();
        map.shuffle(rng);
        Permutation { map }
    }

    /// Domain size `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True for the (unique) permutation of the empty set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Destination of source index `i`.
    #[inline]
    pub fn apply(&self, i: usize) -> usize {
        self.map[i]
    }

    /// The raw destination map.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.map
    }

    /// True if `P[i] == i` for all `i`.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &d)| i == d)
    }

    /// The inverse permutation `P⁻¹` (the paper's `q`, used by the
    /// source-designated algorithm: `b[i] = a[P⁻¹[i]]`).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.map.len()];
        for (i, &d) in self.map.iter().enumerate() {
            inv[d] = i;
        }
        Permutation { map: inv }
    }

    /// Composition `self ∘ other`: first move along `other`, then along
    /// `self`. `(self ∘ other)[i] = self[other[i]]`.
    ///
    /// # Panics
    /// Panics if the sizes differ (composition of different domains is a
    /// type error, not a data error).
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(
            self.len(),
            other.len(),
            "composing permutations of different sizes"
        );
        Permutation {
            map: other.map.iter().map(|&mid| self.map[mid]).collect(),
        }
    }

    /// Move `src` into `dst` along the permutation: `dst[P[i]] = src[i]`.
    pub fn permute<T: Copy>(&self, src: &[T], dst: &mut [T]) -> Result<()> {
        if src.len() != self.len() {
            return Err(PermError::LengthMismatch {
                expected: self.len(),
                got: src.len(),
            });
        }
        if dst.len() != self.len() {
            return Err(PermError::LengthMismatch {
                expected: self.len(),
                got: dst.len(),
            });
        }
        for (i, &v) in src.iter().enumerate() {
            dst[self.map[i]] = v;
        }
        Ok(())
    }

    /// Gather formulation of the same data movement:
    /// `dst[i] = src[P⁻¹[i]]`, computed without materializing the inverse.
    /// Equivalent to [`Permutation::permute`] on the same `(src, dst)`.
    pub fn permute_gather<T: Copy + Default>(&self, src: &[T]) -> Result<Vec<T>> {
        if src.len() != self.len() {
            return Err(PermError::LengthMismatch {
                expected: self.len(),
                got: src.len(),
            });
        }
        let mut dst = vec![T::default(); src.len()];
        self.permute(src, &mut dst)?;
        Ok(dst)
    }

    /// Apply the permutation in place using O(1) extra space per cycle
    /// (cycle-walking with a visited bitmap).
    pub fn permute_in_place<T>(&self, data: &mut [T]) -> Result<()> {
        if data.len() != self.len() {
            return Err(PermError::LengthMismatch {
                expected: self.len(),
                got: data.len(),
            });
        }
        let mut visited = vec![false; self.len()];
        for start in 0..self.len() {
            if visited[start] {
                continue;
            }
            visited[start] = true;
            // Walk the cycle containing `start`: after `data.swap(start,
            // pos)`, slot `pos` holds its final value and slot `start`
            // carries the element still in flight.
            let mut pos = self.map[start];
            while pos != start {
                data.swap(start, pos);
                visited[pos] = true;
                pos = self.map[pos];
            }
        }
        Ok(())
    }

    /// Cycle decomposition: each inner vector lists one cycle's indices in
    /// traversal order, starting from its smallest element. Fixed points are
    /// returned as singleton cycles.
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        let mut visited = vec![false; self.len()];
        let mut cycles = Vec::new();
        for start in 0..self.len() {
            if visited[start] {
                continue;
            }
            let mut cycle = Vec::new();
            let mut i = start;
            while !visited[i] {
                visited[i] = true;
                cycle.push(i);
                i = self.map[i];
            }
            cycles.push(cycle);
        }
        cycles
    }

    /// Number of fixed points (`P[i] == i`).
    pub fn fixed_points(&self) -> usize {
        self.map
            .iter()
            .enumerate()
            .filter(|&(i, &d)| i == d)
            .count()
    }

    /// Build from a cycle decomposition: each inner slice lists a cycle
    /// `(c₀ c₁ ... c_k)` meaning `c₀ → c₁ → ... → c_k → c₀`. Indices not
    /// mentioned are fixed points. Fails if any index is out of range or
    /// repeated.
    pub fn from_cycles(n: usize, cycles: &[&[usize]]) -> Result<Self> {
        let mut map: Vec<usize> = (0..n).collect();
        let mut seen = vec![false; n];
        for cycle in cycles {
            for (k, &i) in cycle.iter().enumerate() {
                if i >= n || seen[i] {
                    return Err(PermError::NotABijection {
                        len: n,
                        offender: i,
                    });
                }
                seen[i] = true;
                map[i] = cycle[(k + 1) % cycle.len()];
            }
        }
        Permutation::from_vec(map)
    }

    /// The permutation's order: the smallest `k ≥ 1` with `Pᵏ = identity`
    /// (the LCM of the cycle lengths). Saturates at `u128::MAX` for
    /// pathological inputs. Returns 1 for the empty permutation.
    pub fn order(&self) -> u128 {
        fn gcd(a: u128, b: u128) -> u128 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        self.cycles().iter().fold(1u128, |acc, c| {
            let len = c.len() as u128;
            let g = gcd(acc, len);
            (acc / g).saturating_mul(len)
        })
    }

    /// The permutation's sign: `+1` for even permutations, `-1` for odd
    /// (parity of `n − #cycles`).
    pub fn sign(&self) -> i8 {
        let transpositions = self.len() - self.cycles().len();
        if transpositions.is_multiple_of(2) {
            1
        } else {
            -1
        }
    }

    /// True if `P² = identity` (every cycle has length 1 or 2) — e.g.
    /// bit-reversal and square transpose.
    pub fn is_involution(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &d)| self.map[d] == i)
    }

    /// The `k`-th power `Pᵏ` (repeated application), computed by cycle
    /// walking in `O(n)` regardless of `k`.
    pub fn power(&self, k: u64) -> Permutation {
        let n = self.len();
        let mut map = vec![0usize; n];
        for cycle in self.cycles() {
            let len = cycle.len() as u64;
            let shift = (k % len) as usize;
            for (pos, &i) in cycle.iter().enumerate() {
                map[i] = cycle[(pos + shift) % cycle.len()];
            }
        }
        Permutation { map }
    }

    /// A uniformly random **derangement** (no fixed points) of size
    /// `n ≥ 2`, by rejection sampling (expected ≈ e tries).
    pub fn random_derangement<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Permutation {
        assert!(n >= 2, "derangements need n >= 2");
        loop {
            let p = Permutation::random(n, rng);
            if p.fixed_points() == 0 {
                return p;
            }
        }
    }

    /// Recognize an affine bit-matrix (BMMC) structure: returns the
    /// [`Bmmc`] with `self.apply(x) == bmmc.apply(x)` for all `x`, or
    /// `None` when the permutation is not affine over GF(2) (or its size
    /// is not a power of two).
    ///
    /// The candidate is solved from O(log n) probes — `dest(0)` gives the
    /// offset, `dest(2^j) ⊕ dest(0)` gives matrix column `j` — and then
    /// verified against every entry with an incremental Gray-style walk
    /// (each step XORs only the columns of the bits that changed), so the
    /// whole recognizer is O(n) with a tiny constant. All of the paper's
    /// structured benchmark families (transpose, bit-reversal, shuffle /
    /// omega, hypercube exchange, Gray code) are detected; random
    /// permutations fail the verification at the first mismatching entry.
    pub fn as_bmmc(&self) -> Option<Bmmc> {
        let n = self.len();
        if n == 0 || !n.is_power_of_two() {
            return None;
        }
        let bits = n.trailing_zeros();
        let offset = self.map[0];
        let cols: Vec<usize> = (0..bits).map(|j| self.map[1usize << j] ^ offset).collect();
        // Verify the candidate over the full domain.
        let mut val = offset;
        for i in 1..n {
            let mut changed = (i - 1) ^ i;
            while changed != 0 {
                val ^= cols[changed.trailing_zeros() as usize];
                changed &= changed - 1;
            }
            if self.map[i] != val {
                return None;
            }
        }
        // The affine map agrees with a verified bijection on every point,
        // so its linear part is invertible and construction cannot fail.
        Some(Bmmc::from_cols(cols, offset).expect("verified bijection has invertible linear part"))
    }

    /// Compose a chain of permutations **in application order**:
    /// `compose_chain(&[p1, p2, p3])` is the single permutation whose
    /// effect equals applying `p1`, then `p2`, then `p3` — i.e.
    /// `p3 ∘ p2 ∘ p1`. Fails on an empty chain or mismatched sizes.
    pub fn compose_chain(chain: &[&Permutation]) -> Result<Permutation> {
        let first = chain.first().ok_or(PermError::LengthMismatch {
            expected: 1,
            got: 0,
        })?;
        let mut acc = (*first).clone();
        for p in &chain[1..] {
            if p.len() != acc.len() {
                return Err(PermError::LengthMismatch {
                    expected: acc.len(),
                    got: p.len(),
                });
            }
            acc = p.compose(&acc);
        }
        Ok(acc)
    }

    /// A 64-bit FNV-1a fingerprint of the permutation: the hash of the
    /// destination map mixed with the length. This is the shared identity
    /// used by the plan cache, the on-disk plan store, and the plan codec
    /// (`hmm-plan`), so every layer keys the same permutation the same
    /// way. Two distinct permutations colliding on both fingerprint *and*
    /// length is a ~2⁻⁶⁴ event — and every consumer verifies the full
    /// image on use, so a collision costs a rebuild, never a wrong answer.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for &d in &self.map {
            let mut v = d as u64;
            for _ in 0..8 {
                h ^= v & 0xff;
                h = h.wrapping_mul(PRIME);
                v >>= 8;
            }
        }
        h ^ (self.map.len() as u64).wrapping_mul(PRIME)
    }
}

impl core::fmt::Display for Permutation {
    /// Cycle notation for small permutations (`(0 2 1)(3)`), elided for
    /// large ones.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.len() > 64 {
            return write!(f, "Permutation(n = {})", self.len());
        }
        if self.is_identity() {
            return write!(f, "id({})", self.len());
        }
        for cycle in self.cycles() {
            if cycle.len() == 1 {
                continue; // conventional: omit fixed points
            }
            write!(f, "(")?;
            for (k, i) in cycle.iter().enumerate() {
                if k > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{i}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_accepts_bijections() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        assert_eq!(p.apply(0), 2);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn from_vec_rejects_duplicates_and_out_of_range() {
        assert_eq!(
            Permutation::from_vec(vec![0, 0, 1]),
            Err(PermError::NotABijection {
                len: 3,
                offender: 0
            })
        );
        assert_eq!(
            Permutation::from_vec(vec![0, 3, 1]),
            Err(PermError::NotABijection {
                len: 3,
                offender: 3
            })
        );
    }

    #[test]
    fn identity_properties() {
        let p = Permutation::identity(8);
        assert!(p.is_identity());
        assert_eq!(p.inverse(), p);
        assert_eq!(p.fixed_points(), 8);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = Permutation::random(100, &mut rng);
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn permute_moves_to_destinations() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let src = [10, 20, 30];
        let mut dst = [0; 3];
        p.permute(&src, &mut dst).unwrap();
        // b[P[i]] = a[i]: b[2]=10, b[0]=20, b[1]=30.
        assert_eq!(dst, [20, 30, 10]);
    }

    #[test]
    fn gather_equals_scatter() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Permutation::random(64, &mut rng);
        let src: Vec<u32> = (0..64).map(|i| i * 3).collect();
        let mut scat = vec![0u32; 64];
        p.permute(&src, &mut scat).unwrap();
        assert_eq!(p.permute_gather(&src).unwrap(), scat);
    }

    #[test]
    fn in_place_matches_out_of_place() {
        let mut rng = StdRng::seed_from_u64(99);
        for n in [1usize, 2, 5, 17, 64, 100] {
            let p = Permutation::random(n, &mut rng);
            let src: Vec<u64> = (0..n as u64).collect();
            let mut expect = vec![0u64; n];
            p.permute(&src, &mut expect).unwrap();
            let mut data = src.clone();
            p.permute_in_place(&mut data).unwrap();
            assert_eq!(data, expect, "n = {n}");
        }
    }

    #[test]
    fn length_mismatches_rejected() {
        let p = Permutation::identity(4);
        let mut dst = [0u8; 3];
        assert!(p.permute(&[1u8, 2, 3, 4], &mut dst).is_err());
        assert!(p.permute(&[1u8, 2, 3], &mut [0u8; 4]).is_err());
        assert!(p.permute_gather(&[1u8; 5]).is_err());
        assert!(p.permute_in_place(&mut [0u8; 2]).is_err());
    }

    #[test]
    fn cycles_partition_the_domain() {
        // (0 2 1)(3)
        let p = Permutation::from_vec(vec![2, 0, 1, 3]).unwrap();
        let cycles = p.cycles();
        assert_eq!(cycles, vec![vec![0, 2, 1], vec![3]]);
        let total: usize = cycles.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn random_is_a_bijection_and_varies_by_seed() {
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(2);
        let p1 = Permutation::random(256, &mut rng1);
        let p2 = Permutation::random(256, &mut rng2);
        // Re-validates internally.
        Permutation::from_vec(p1.as_slice().to_vec()).unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert!(p.is_identity());
        assert!(p.cycles().is_empty());
        let mut nothing: [u8; 0] = [];
        p.permute_in_place(&mut nothing).unwrap();
    }

    #[test]
    fn from_cycles_builds_expected_map() {
        let p = Permutation::from_cycles(4, &[&[0, 2, 1]]).unwrap();
        assert_eq!(p.as_slice(), &[2, 0, 1, 3]);
        // Out of range / repeated indices rejected.
        assert!(Permutation::from_cycles(3, &[&[0, 3]]).is_err());
        assert!(Permutation::from_cycles(3, &[&[0, 1], &[1, 2]]).is_err());
        // Empty cycle list = identity.
        assert!(Permutation::from_cycles(5, &[]).unwrap().is_identity());
    }

    #[test]
    fn order_is_lcm_of_cycle_lengths() {
        // (0 1 2)(3 4): order 6.
        let p = Permutation::from_cycles(5, &[&[0, 1, 2], &[3, 4]]).unwrap();
        assert_eq!(p.order(), 6);
        assert_eq!(Permutation::identity(7).order(), 1);
        assert_eq!(Permutation::identity(0).order(), 1);
        // Applying P `order` times gives the identity.
        assert!(p.power(6).is_identity());
        assert!(!p.power(3).is_identity());
    }

    #[test]
    fn sign_matches_transposition_parity() {
        // A single transposition is odd.
        let swap = Permutation::from_cycles(4, &[&[0, 1]]).unwrap();
        assert_eq!(swap.sign(), -1);
        // A 3-cycle is even.
        let three = Permutation::from_cycles(4, &[&[0, 1, 2]]).unwrap();
        assert_eq!(three.sign(), 1);
        // Sign is multiplicative under composition.
        let composed = swap.compose(&three);
        assert_eq!(composed.sign(), swap.sign() * three.sign());
        assert_eq!(Permutation::identity(9).sign(), 1);
    }

    #[test]
    fn involutions_detected() {
        assert!(Permutation::identity(4).is_involution());
        assert!(Permutation::from_cycles(4, &[&[0, 1], &[2, 3]])
            .unwrap()
            .is_involution());
        assert!(!Permutation::from_cycles(4, &[&[0, 1, 2]])
            .unwrap()
            .is_involution());
    }

    #[test]
    fn power_agrees_with_repeated_composition() {
        let mut rng = StdRng::seed_from_u64(17);
        let p = Permutation::random(40, &mut rng);
        let mut by_compose = Permutation::identity(40);
        for k in 0..8u64 {
            assert_eq!(p.power(k), by_compose, "k = {k}");
            by_compose = p.compose(&by_compose);
        }
        // Large exponents reduce modulo the order.
        let ord = p.order() as u64;
        assert!(p.power(ord * 1000).is_identity());
    }

    #[test]
    fn derangements_have_no_fixed_points() {
        let mut rng = StdRng::seed_from_u64(23);
        for n in [2usize, 3, 10, 100] {
            let p = Permutation::random_derangement(n, &mut rng);
            assert_eq!(p.fixed_points(), 0, "n = {n}");
        }
    }

    #[test]
    fn fingerprint_distinguishes_and_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(31);
        let a = Permutation::random(1 << 10, &mut rng);
        let b = Permutation::random(1 << 10, &mut rng);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        // Length participates even when images prefix-match.
        assert_ne!(
            Permutation::identity(64).fingerprint(),
            Permutation::identity(128).fingerprint()
        );
    }

    #[test]
    fn display_cycle_notation() {
        let p = Permutation::from_cycles(4, &[&[0, 2, 1]]).unwrap();
        assert_eq!(p.to_string(), "(0 2 1)");
        assert_eq!(Permutation::identity(3).to_string(), "id(3)");
        let big = Permutation::identity(100);
        assert!(big.to_string().contains("n = 100"));
    }

    #[test]
    #[should_panic(expected = "different sizes")]
    fn compose_different_sizes_panics() {
        let _ = Permutation::identity(3).compose(&Permutation::identity(4));
    }

    #[test]
    fn as_bmmc_recognizes_structured_families() {
        use crate::families;
        let n = 1 << 10;
        let structured: Vec<(&str, Permutation)> = vec![
            ("identity", Permutation::identity(n)),
            ("shuffle", families::shuffle(n).unwrap()),
            ("unshuffle", families::unshuffle(n).unwrap()),
            ("bit_reversal", families::bit_reversal(n).unwrap()),
            ("transpose", families::transpose(32, 32, n).unwrap()),
            ("rect_transpose", families::transpose(16, 64, n).unwrap()),
            ("butterfly", families::butterfly(n, 3).unwrap()),
            ("gray_code", families::gray_code(n).unwrap()),
            // Rotation by n/2 is the affine map x ⊕ (n/2).
            ("half_rotation", families::rotation(n, n / 2)),
        ];
        for (name, p) in structured {
            let bmmc = p.as_bmmc().unwrap_or_else(|| panic!("{name} not detected"));
            for x in 0..n {
                assert_eq!(bmmc.apply(x), p.apply(x), "{name} at {x}");
            }
            assert_eq!(bmmc.to_permutation(), p, "{name}");
        }
    }

    #[test]
    fn as_bmmc_rejects_non_affine() {
        use crate::families;
        let n = 1 << 10;
        // Cyclic rotation by 1 carries between bits: not GF(2)-affine.
        assert!(families::rotation(n, 1).as_bmmc().is_none());
        let mut rng = StdRng::seed_from_u64(5);
        assert!(Permutation::random(n, &mut rng).as_bmmc().is_none());
        // Non-power-of-two sizes are never BMMC.
        assert!(Permutation::identity(12).as_bmmc().is_none());
        assert!(Permutation::identity(0).as_bmmc().is_none());
    }

    #[test]
    fn compose_chain_applies_left_to_right() {
        use crate::families;
        let n = 1 << 8;
        let p1 = families::shuffle(n).unwrap();
        let p2 = families::bit_reversal(n).unwrap();
        let p3 = families::butterfly(n, 2).unwrap();
        let fused = Permutation::compose_chain(&[&p1, &p2, &p3]).unwrap();
        // Applying the chain to data equals applying the fused permutation.
        let src: Vec<u32> = (0..n as u32).collect();
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        p1.permute(&src, &mut a).unwrap();
        p2.permute(&a, &mut b).unwrap();
        p3.permute(&b, &mut a).unwrap();
        let mut direct = vec![0u32; n];
        fused.permute(&src, &mut direct).unwrap();
        assert_eq!(direct, a);
        // Singleton chain is the permutation itself; empty chain errors.
        assert_eq!(Permutation::compose_chain(&[&p1]).unwrap(), p1);
        assert!(Permutation::compose_chain(&[]).is_err());
        assert!(Permutation::compose_chain(&[&p1, &Permutation::identity(4)]).is_err());
    }

    #[test]
    fn compose_order_is_self_after_other() {
        // other: 0->1->2->0 rotation; self: swap 0,1.
        let other = Permutation::from_vec(vec![1, 2, 0]).unwrap();
        let swap = Permutation::from_vec(vec![1, 0, 2]).unwrap();
        let c = swap.compose(&other);
        // c[i] = swap[other[i]]: c[0]=swap[1]=0, c[1]=swap[2]=2, c[2]=swap[0]=1.
        assert_eq!(c.as_slice(), &[0, 2, 1]);
    }
}
