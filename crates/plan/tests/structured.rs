//! Differential suite for the structured (BMMC) fast paths: every plan
//! the closed-form emitter produces must be interchangeable with the
//! general König plan for the same permutation — same shape, width,
//! γ_w bits, fingerprint, and (the part that matters to executors) the
//! same realised permutation — across all five paper families and three
//! sizes. The coloring itself may differ: the fast path picks its own
//! conflict-free color assignment (`G·row ⊕ col`), so the proof of
//! equivalence is effect-level, checked here entry by entry.
//!
//! Also pins the composition algebra with a property test:
//! `compose(P2, P1)` applied once equals applying P1 then P2, for random
//! mixes of structured and general permutations.

use hmm_graph::Strategy as ColoringStrategy;
use hmm_perm::families::{self, Family};
use hmm_perm::scheduled_shape;
use hmm_perm::Permutation;
use hmm_plan::{PlanIr, PlanStore, StoreKey};
use proptest::prelude::*;

const W: usize = 32;
const SIZES: [usize; 3] = [1 << 10, 1 << 16, 1 << 18];

/// The five families of the paper's Table 1, sized to `n`.
fn paper_families(n: usize) -> Vec<(&'static str, Permutation)> {
    Family::ALL
        .iter()
        .map(|fam| (fam.name(), fam.build(n, 0xc0ffee ^ n as u64).unwrap()))
        .collect()
}

#[test]
fn structured_plans_interchangeable_with_koenig_for_all_families() {
    for n in SIZES {
        for (name, p) in paper_families(n) {
            let auto = PlanIr::build(&p, W).unwrap();
            let shape = scheduled_shape(n, W).unwrap();
            // Forcing an explicit strategy bypasses detection: this is
            // the genuine König reference even for structured families.
            let koenig = PlanIr::build_for_shape(&p, shape, W, ColoringStrategy::Hybrid).unwrap();
            assert_eq!(auto.shape(), koenig.shape(), "{name} n={n}");
            assert_eq!(auto.width(), koenig.width(), "{name} n={n}");
            assert_eq!(
                auto.gamma().to_bits(),
                koenig.gamma().to_bits(),
                "{name} n={n}"
            );
            assert_eq!(auto.fingerprint(), koenig.fingerprint(), "{name} n={n}");
            assert!(auto.matches(&p), "{name} n={n}");
            assert!(koenig.matches(&p), "{name} n={n}");
            assert_eq!(auto.recompose(), koenig.recompose(), "{name} n={n}");
            auto.validate().unwrap();
        }
    }
}

#[test]
fn structured_families_are_detected_random_is_not() {
    let n = 1 << 12;
    for (name, p) in paper_families(n) {
        let detected = PlanIr::build_structured(&p, W).is_some();
        let expected = name != "random";
        assert_eq!(detected, expected, "{name}");
    }
    // The omega-network stage (shuffle) and hypercube exchange are the
    // ISSUE's named extra families.
    assert!(PlanIr::build_structured(&families::shuffle(n).unwrap(), W).is_some());
    assert!(PlanIr::build_structured(&families::butterfly(n, 4).unwrap(), W).is_some());
    assert!(PlanIr::build_structured(&families::bit_reversal(n).unwrap(), W).is_some());
}

#[test]
fn structured_plans_round_trip_codec_and_store() {
    // The closed-form plans must survive the same persistence pipeline
    // as König plans: encode/decode plus a store save/load cycle.
    let n = 1 << 12;
    let p = families::bit_reversal(n).unwrap();
    let ir = PlanIr::build_structured(&p, W).unwrap().unwrap();
    let decoded = hmm_plan::decode(&hmm_plan::encode(&ir)).unwrap();
    assert_eq!(decoded, ir);
    let dir =
        std::env::temp_dir().join(format!("hmm-structured-store-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = PlanStore::open(&dir).unwrap();
    store.save(&ir).unwrap();
    let loaded = store.load(&StoreKey::of(&ir)).unwrap().unwrap();
    assert_eq!(loaded, ir);
    assert!(loaded.matches(&p));
    let _ = std::fs::remove_dir_all(&dir);
}

/// One permutation drawn from the full mix: structured families and
/// general (random) permutations, so composition exercises the
/// matrix-product path, the plan-once path, and the mixed path.
fn any_perm(n: usize) -> impl Strategy<Value = Permutation> {
    (0u8..6, any::<u64>()).prop_map(move |(kind, seed)| match kind {
        0 => Permutation::identity(n),
        1 => families::shuffle(n).unwrap(),
        2 => families::bit_reversal(n).unwrap(),
        3 => families::transpose_square(n).unwrap(),
        4 => families::butterfly(n, (seed % 10) as u32).unwrap(),
        _ => families::random(n, seed),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compose_once_equals_applying_p1_then_p2(
        (p1, p2, payload_seed) in (any_perm(1 << 10), any_perm(1 << 10), any::<u64>())
    ) {
        let n = 1 << 10;
        let plan1 = PlanIr::build(&p1, W).unwrap();
        let plan2 = PlanIr::build(&p2, W).unwrap();
        let fused = plan2.compose(&plan1).unwrap();
        fused.validate().unwrap();
        prop_assert!(fused.matches(&p2.compose(&p1)));
        let src: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ payload_seed)
            .collect();
        let mut mid = vec![0u64; n];
        let mut two_step = vec![0u64; n];
        p1.permute(&src, &mut mid).unwrap();
        p2.permute(&mid, &mut two_step).unwrap();
        let mut one_step = vec![0u64; n];
        fused.recompose().permute(&src, &mut one_step).unwrap();
        prop_assert_eq!(one_step, two_step);
    }
}
