//! Differential suite for the parallel plan compiler: the parallel
//! builder must produce **byte-identical** plans (through the codec, i.e.
//! the exact artifact the store persists and the cache fingerprints) to
//! the sequential builder, for every paper permutation family, several
//! shapes, and thread budgets past the host's core count.
//!
//! Byte equality through `codec::encode` is deliberately stronger than
//! `PlanIr` equality: it pins the steps, the shape, γ_w's f64 bits, and
//! the fingerprint all at once, so a nondeterministic parallel stage
//! cannot hide behind a lossy comparison.

use hmm_perm::families::Family;
use hmm_plan::{encode, PlanIr};

const W: usize = 32;

#[test]
fn parallel_builder_is_byte_identical_for_all_families() {
    // Square (even exponent) and rectangular (odd exponent) shapes.
    for n in [1usize << 10, 1 << 13, 1 << 16] {
        for fam in Family::ALL {
            let p = fam.build(n, 97).unwrap();
            let seq_bytes = encode(&PlanIr::build(&p, W).unwrap());
            for threads in [2usize, 4, 16] {
                let par_bytes = encode(&PlanIr::build_par(&p, W, threads).unwrap());
                assert_eq!(
                    par_bytes,
                    seq_bytes,
                    "{} n={n} threads={threads}",
                    fam.name()
                );
            }
        }
    }
}

#[test]
fn parallel_builder_is_byte_identical_at_256k_random() {
    // One larger case so the fork threshold (8K edges) is crossed many
    // levels deep; the full 256K–4M sweep runs in the bench harness
    // (`repro native --plan-threads`), which asserts the same equality.
    let n = 1usize << 18;
    let p = Family::Random.build(n, 3).unwrap();
    let seq_bytes = encode(&PlanIr::build(&p, W).unwrap());
    let par_bytes = encode(&PlanIr::build_par(&p, W, 4).unwrap());
    assert_eq!(par_bytes, seq_bytes);
}

#[test]
fn parallel_builder_matches_the_permutation() {
    let n = 1usize << 12;
    for fam in Family::ALL {
        let p = fam.build(n, 11).unwrap();
        let ir = PlanIr::build_par(&p, W, 4).unwrap();
        assert!(ir.matches(&p), "{}", fam.name());
        assert_eq!(ir.recompose(), p, "{}", fam.name());
    }
}
