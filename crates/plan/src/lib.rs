//! # hmm-plan — the permutation plan IR and its persistent store
//!
//! The offline permutation algorithm's economics rest on one asymmetry:
//! *building* a schedule (König edge-coloring of the transfer multigraph,
//! Section VII of the paper) is expensive, while *running* one is three
//! conflict-free passes. This crate owns the artifact that asymmetry
//! produces, independent of any executor:
//!
//! * [`PlanIr`] — the backend-neutral plan: matrix shape, the three pass
//!   permutations from the coloring, derived flat gather maps, the
//!   measured distribution γ_w(P), and the permutation fingerprint. The
//!   simulator (`hmm-offperm`) and the CPU backend (`hmm-native`) both
//!   build *from* it instead of each re-deriving the coloring.
//! * [`codec`] — a versioned, std-only binary format (length-prefixed
//!   sections, FNV-1a checksum) that never panics on hostile bytes.
//! * [`PlanStore`] — a directory of encoded plans keyed by
//!   `(fingerprint, n, width)`: the cross-process cache tier that lets a
//!   cold process skip the König build entirely. Loads are verified —
//!   a corrupt or colliding file is reported for discard, never trusted.
//!
//! Dependency-wise the crate sits directly above the math (`hmm-perm`,
//! `hmm-graph`): no simulator, no machine model, no cost accounting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod affine;
pub mod codec;
pub mod error;
pub mod ir;
pub mod store;

pub use affine::AffineStep;
pub use codec::{
    compact_encoded_len, decode, encode, encode_to, fnv1a, fnv1a_update, FNV_OFFSET, FORMAT_VERSION,
};
pub use error::{PlanError, Result};
pub use ir::{PassLayout, PlanIr};
pub use store::{PlanStore, StoreEntry, StoreKey};
