//! The backend-neutral plan IR: the offline König decomposition of one
//! permutation as a first-class, reusable artifact.
//!
//! The paper's premise is that schedule construction is *offline*: the
//! expensive part of the scheduled permutation — edge-coloring the
//! `c`-regular bipartite transfer multigraph so the three passes are
//! conflict-free — is paid once and the result reused for every
//! application of the permutation. [`PlanIr`] is that result, decoupled
//! from any executor:
//!
//! * the matrix shape `r × c` and the machine width `w` the plan was
//!   built for;
//! * the three **pass permutations** (flat destination maps) produced by
//!   the coloring: step 1 routes each element to the column named by its
//!   edge color, step 2 to its destination row, step 3 to its destination
//!   column (the Figure 6 argument);
//! * the derived flat **gather maps** (per-row inverses) that sweep-based
//!   executors consume directly;
//! * the measured distribution `γ_w(P)` (the scatter/scheduled crossover
//!   input) and the permutation's 64-bit fingerprint (the cache identity).
//!
//! The simulator (`hmm-offperm`) stages the pass permutations into its
//! row/column schedules; the CPU backend (`hmm-native`) copies the gather
//! maps into its fused sweeps; the codec (`crate::codec`) serialises the
//! whole thing for the cross-process store (`crate::store`). None of them
//! re-runs the coloring.

use crate::error::{PlanError, Result};
use hmm_graph::{edge_color_par, edge_color_with, Parallelism, RegularBipartite, Strategy};
use hmm_perm::distribution::distribution;
use hmm_perm::{scheduled_shape, MatrixShape, Permutation};

/// A built, backend-neutral permutation plan (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanIr {
    shape: MatrixShape,
    width: usize,
    /// Step 1 destination maps, flattened `r × c`: entry `i·c + j` is the
    /// color (column) element `(i, j)` moves to. Each row is a permutation
    /// of `0..c`.
    step1: Vec<u32>,
    /// Step 2 destination maps, flattened `c × r`: entry `k·r + i` is the
    /// destination row of the color-`k` element in row `i`. Each row is a
    /// permutation of `0..r`.
    step2: Vec<u32>,
    /// Step 3 destination maps, flattened `r × c`: entry `i'·c + k` is the
    /// destination column of the color-`k` element now in row `i'`. Each
    /// row is a permutation of `0..c`.
    step3: Vec<u32>,
    /// Derived gather map for pass 1 (`r × c`): per-row inverse of `step1`.
    g1: Vec<u32>,
    /// Derived gather map for pass 2 (`c × r`): per-row inverse of `step2`.
    g2: Vec<u32>,
    /// Derived gather map for pass 3 (`r × c`): per-row inverse of `step3`.
    g3: Vec<u32>,
    /// Measured distribution γ_w(P) at `width`.
    gamma: f64,
    /// `Permutation::fingerprint()` of the source permutation.
    fingerprint: u64,
}

impl PlanIr {
    /// Build the plan for `p` on a width-`width` machine with the default
    /// coloring strategy.
    pub fn build(p: &Permutation, width: usize) -> Result<Self> {
        Self::build_with(p, width, Strategy::Hybrid)
    }

    /// [`PlanIr::build`] with an explicit coloring strategy.
    pub fn build_with(p: &Permutation, width: usize, strategy: Strategy) -> Result<Self> {
        let shape = scheduled_shape(p.len(), width)?;
        Self::build_for_shape(p, shape, width, strategy)
    }

    /// The parallel plan compiler: [`PlanIr::build`] fanned out over a
    /// scoped-thread budget of `threads`. Every stage parallelises — the
    /// König coloring forks its split tree (and colors connected
    /// components of the transfer graph independently), and the step
    /// fills, row inversions, and γ_w measurement chunk over rows. The
    /// result is **byte-identical** to the sequential builder at any
    /// thread count: the budget relocates work, it never reorders the
    /// deterministic partitions (pinned by `tests/parallel.rs` and the
    /// `hmm-graph` determinism suite). `threads <= 1` *is* the sequential
    /// builder.
    pub fn build_par(p: &Permutation, width: usize, threads: usize) -> Result<Self> {
        let shape = scheduled_shape(p.len(), width)?;
        Self::build_for_shape_par(p, shape, width, Strategy::Hybrid, threads)
    }

    /// [`PlanIr::build_par`] on an explicit shape with an explicit
    /// strategy — the parallel analogue of [`PlanIr::build_for_shape`].
    pub fn build_for_shape_par(
        p: &Permutation,
        shape: MatrixShape,
        width: usize,
        strategy: Strategy,
        threads: usize,
    ) -> Result<Self> {
        if threads <= 1 {
            return Self::build_for_shape(p, shape, width, strategy);
        }
        let n = p.len();
        if shape.len() != n {
            return Err(PlanError::SizeMismatch {
                expected: n,
                got: shape.len(),
            });
        }
        let (r, c) = (shape.rows, shape.cols);
        let par = Parallelism::threads(threads);

        let mut edges: Vec<(usize, usize)> = vec![(0, 0); n];
        par.run_rows(&mut edges, c, |first_row, chunk| {
            let base = first_row * c;
            for (off, e) in chunk.iter_mut().enumerate() {
                let idx = base + off;
                *e = (idx / c, p.apply(idx) / c);
            }
        });
        let graph = RegularBipartite::new(r, edges)?;
        let coloring = edge_color_par(&graph, strategy, par)?;
        debug_assert_eq!(coloring.num_colors, c);

        // The sequential fill scatters into step2 (`c × r`) and step3
        // (`r × c`) from a single walk of the source rows. To keep the
        // parallel fill free of cross-chunk writes (and of `unsafe`), it
        // instead stages two row-major `r × c` temporaries — `s2t[i][k] =
        // destination row` and `dcol[i][k] = destination column` of row
        // `i`'s color-`k` element — whose writes stay inside the walked
        // row (each row's colors are a permutation of `0..c`), then
        // derives step2/step3 with chunk-owned transposing passes.
        let mut step1 = vec![0u32; n];
        let mut s2t = vec![0u32; n];
        let mut dcol = vec![0u32; n];
        let colors = &coloring.colors;
        par_rows3(
            par,
            0,
            c,
            &mut step1,
            &mut s2t,
            &mut dcol,
            &|first_row, s1, s2, dc| {
                let rows = s1.len() / c;
                for rr in 0..rows {
                    let i = first_row + rr;
                    for j in 0..c {
                        let idx = i * c + j;
                        let dest = p.apply(idx);
                        let k = colors[idx];
                        s1[rr * c + j] = k as u32;
                        s2[rr * c + k] = (dest / c) as u32;
                        dc[rr * c + k] = (dest % c) as u32;
                    }
                }
            },
        );

        let mut step2 = vec![0u32; n];
        {
            let s2t = &s2t;
            par.run_rows(&mut step2, r, |first_k, chunk| {
                for (kk, row) in chunk.chunks_exact_mut(r).enumerate() {
                    let k = first_k + kk;
                    for (i, slot) in row.iter_mut().enumerate() {
                        *slot = s2t[i * c + k];
                    }
                }
            });
        }
        drop(s2t);
        let g2 = invert_rows_par(&step2, r, par);

        let mut step3 = vec![0u32; n];
        {
            let (g2, dcol) = (&g2, &dcol);
            par.run_rows(&mut step3, c, |first_di, chunk| {
                for (dd, row) in chunk.chunks_exact_mut(c).enumerate() {
                    let di = first_di + dd;
                    for (k, slot) in row.iter_mut().enumerate() {
                        let i = g2[k * r + di] as usize;
                        *slot = dcol[i * c + k];
                    }
                }
            });
        }
        drop(dcol);
        let g1 = invert_rows_par(&step1, c, par);
        let g3 = invert_rows_par(&step3, c, par);

        Ok(PlanIr {
            shape,
            width,
            step1,
            step2,
            step3,
            g1,
            g2,
            g3,
            gamma: distribution_par(p, width, par),
            fingerprint: p.fingerprint(),
        })
    }

    /// Build on an explicit matrix shape (exposed for tests with
    /// non-default shapes; `shape.len()` must equal `p.len()`).
    pub fn build_for_shape(
        p: &Permutation,
        shape: MatrixShape,
        width: usize,
        strategy: Strategy,
    ) -> Result<Self> {
        let n = p.len();
        if shape.len() != n {
            return Err(PlanError::SizeMismatch {
                expected: n,
                got: shape.len(),
            });
        }
        let (r, c) = (shape.rows, shape.cols);

        // Bipartite multigraph: source row -> destination row, one edge per
        // element; c-regular since each row holds c elements and receives c.
        let edges: Vec<(usize, usize)> = (0..n).map(|idx| (idx / c, p.apply(idx) / c)).collect();
        let graph = RegularBipartite::new(r, edges)?;
        let coloring = edge_color_with(&graph, strategy)?;
        debug_assert_eq!(coloring.num_colors, c);

        let mut step1 = vec![0u32; n];
        let mut step2 = vec![0u32; n];
        let mut step3 = vec![0u32; n];
        for (idx, slot1) in step1.iter_mut().enumerate() {
            let i = idx / c;
            let dest = p.apply(idx);
            let (di, dj) = (dest / c, dest % c);
            let k = coloring.colors[idx];
            *slot1 = k as u32;
            step2[k * r + i] = di as u32;
            step3[di * c + k] = dj as u32;
        }
        let g1 = invert_rows(&step1, c);
        let g2 = invert_rows(&step2, r);
        let g3 = invert_rows(&step3, c);

        Ok(PlanIr {
            shape,
            width,
            step1,
            step2,
            step3,
            g1,
            g2,
            g3,
            gamma: distribution(p, width),
            fingerprint: p.fingerprint(),
        })
    }

    /// Reassemble a plan from raw parts — the codec's decode path. The
    /// gather maps are re-derived (they are redundant with the steps, so
    /// the wire format does not carry them), and every step row is
    /// validated to be a permutation of its row: hostile bytes yield
    /// [`PlanError::Codec`], never a panic or an out-of-range gather.
    pub(crate) fn from_steps(
        shape: MatrixShape,
        width: usize,
        step1: Vec<u32>,
        step2: Vec<u32>,
        step3: Vec<u32>,
        gamma: f64,
        fingerprint: u64,
    ) -> Result<Self> {
        let (r, c) = (shape.rows, shape.cols);
        let n = shape.len();
        for (name, flat, cols) in [
            ("step1", &step1, c),
            ("step2", &step2, r),
            ("step3", &step3, c),
        ] {
            if flat.len() != n {
                return Err(PlanError::Codec {
                    reason: format!("{name} has {} entries, shape needs {n}", flat.len()),
                });
            }
            if !rows_are_permutations(flat, cols) {
                return Err(PlanError::Codec {
                    reason: format!("{name} rows are not permutations of 0..{cols}"),
                });
            }
        }
        let g1 = invert_rows(&step1, c);
        let g2 = invert_rows(&step2, r);
        let g3 = invert_rows(&step3, c);
        Ok(PlanIr {
            shape,
            width,
            step1,
            step2,
            step3,
            g1,
            g2,
            g3,
            gamma,
            fingerprint,
        })
    }

    /// The matrix shape of the three passes.
    pub fn shape(&self) -> MatrixShape {
        self.shape
    }

    /// The machine width the plan was built for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of elements the plan permutes.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// True for a zero-element plan (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The measured distribution γ_w(P) recorded at build time.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The 64-bit fingerprint of the source permutation.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Step 1 flat destination map (`r × c`; entry = color).
    pub fn step1(&self) -> &[u32] {
        &self.step1
    }

    /// Step 2 flat destination map (`c × r`; entry = destination row).
    pub fn step2(&self) -> &[u32] {
        &self.step2
    }

    /// Step 3 flat destination map (`r × c`; entry = destination column).
    pub fn step3(&self) -> &[u32] {
        &self.step3
    }

    /// Pass 1 gather map (`r × c`): `out[i][k] = in[i][g1[i·c + k]]`.
    pub fn gather1(&self) -> &[u32] {
        &self.g1
    }

    /// Pass 2 gather map (`c × r`), on the transposed matrix.
    pub fn gather2(&self) -> &[u32] {
        &self.g2
    }

    /// Pass 3 gather map (`r × c`).
    pub fn gather3(&self) -> &[u32] {
        &self.g3
    }

    /// Per-pass geometry hints for sweep executors: the matrix view each
    /// of the three passes runs over, in execution order (pass 2 runs on
    /// the transposed matrix), and whether a fused executor folds a
    /// transpose into the pass's write side.
    ///
    /// The layouts are **derived** from the stored shape — like the
    /// gather maps, they are never serialised, so exposing them changes
    /// no wire byte (`codec::FORMAT_VERSION` stays 1) and a decoded plan
    /// reports exactly the layouts of the plan that was encoded.
    pub fn pass_layouts(&self) -> [PassLayout; 3] {
        let MatrixShape { rows: r, cols: c } = self.shape;
        [
            PassLayout {
                rows: r,
                cols: c,
                fused_transpose: true,
            },
            PassLayout {
                rows: c,
                cols: r,
                fused_transpose: true,
            },
            PassLayout {
                rows: r,
                cols: c,
                fused_transpose: false,
            },
        ]
    }

    /// Flat destination of source index `idx` under the composed three
    /// steps.
    #[inline]
    fn dest_of(&self, idx: usize) -> usize {
        let (r, c) = (self.shape.rows, self.shape.cols);
        let (i, j) = (idx / c, idx % c);
        let k = self.step1[i * c + j] as usize;
        let di = self.step2[k * r + i] as usize;
        let dj = self.step3[di * c + k] as usize;
        di * c + dj
    }

    /// Compose the three steps back into the flat permutation the plan
    /// realises.
    pub fn recompose(&self) -> Permutation {
        let map: Vec<usize> = (0..self.len()).map(|idx| self.dest_of(idx)).collect();
        Permutation::from_vec_unchecked(map)
    }

    /// True iff this plan realises exactly `p` — the collision check every
    /// store hit runs before a decoded plan is trusted (an O(n) walk, no
    /// allocation).
    pub fn matches(&self, p: &Permutation) -> bool {
        self.len() == p.len() && (0..self.len()).all(|idx| self.dest_of(idx) == p.apply(idx))
    }

    /// The step-1 destination maps as one [`Permutation`] per row — the
    /// staging form the simulator's row-wise schedules consume.
    pub fn step1_row_perms(&self) -> Vec<Permutation> {
        rows_to_perms(&self.step1, self.shape.cols)
    }

    /// The step-2 destination maps as one [`Permutation`] per column.
    pub fn step2_col_perms(&self) -> Vec<Permutation> {
        rows_to_perms(&self.step2, self.shape.rows)
    }

    /// The step-3 destination maps as one [`Permutation`] per row.
    pub fn step3_row_perms(&self) -> Vec<Permutation> {
        rows_to_perms(&self.step3, self.shape.cols)
    }
}

/// Geometry of one executor sweep, derived from the plan shape (see
/// [`PlanIr::pass_layouts`]): the `rows × cols` matrix view the pass
/// iterates, where every gather map indexes within one `cols`-element
/// row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassLayout {
    /// Input rows of this pass's matrix view.
    pub rows: usize,
    /// Row length — the range the pass's gather indices live in.
    pub cols: usize,
    /// True when a fused executor writes this pass's output transposed
    /// (passes 1 and 2 of the three-sweep CPU executor).
    pub fused_transpose: bool,
}

impl PassLayout {
    /// How many of this pass's input rows a staging buffer of
    /// `stage_bytes` holds, when each staged row carries `band_cols`
    /// elements of `elem_bytes` bytes (a fused executor stages only its
    /// worker's band of the row): as many as fit, clamped to
    /// `1..=rows`.
    pub fn staging_rows(&self, elem_bytes: usize, stage_bytes: usize, band_cols: usize) -> usize {
        (stage_bytes / (band_cols * elem_bytes).max(1)).clamp(1, self.rows.max(1))
    }
}

/// Per-row inverse of a flat destination map: `out[row·cols + flat[row·cols
/// + j]] = j`. Requires each row to be a permutation of `0..cols`.
fn invert_rows(flat: &[u32], cols: usize) -> Vec<u32> {
    let mut out = vec![0u32; flat.len()];
    for (row_idx, row) in flat.chunks_exact(cols).enumerate() {
        let base = row_idx * cols;
        for (j, &d) in row.iter().enumerate() {
            out[base + d as usize] = j as u32;
        }
    }
    out
}

/// Per-row inverse over a thread budget: identical output to
/// [`invert_rows`] (each output row is owned by exactly one chunk).
fn invert_rows_par(flat: &[u32], cols: usize, par: Parallelism) -> Vec<u32> {
    let mut out = vec![0u32; flat.len()];
    par.run_rows(&mut out, cols, |first_row, chunk| {
        for (rr, orow) in chunk.chunks_exact_mut(cols).enumerate() {
            let base = (first_row + rr) * cols;
            for (j, &d) in flat[base..base + cols].iter().enumerate() {
                orow[d as usize] = j as u32;
            }
        }
    });
    out
}

/// The filler a [`par_rows3`] pass runs on each aligned three-buffer row
/// chunk: `(first_row, rows_of_a, rows_of_b, rows_of_c)`.
type Rows3Fill<'a> = &'a (dyn Fn(usize, &mut [u32], &mut [u32], &mut [u32]) + Sync);

/// Fork/join three equally-shaped row-major buffers into aligned row
/// chunks, so one pass can fill all three without cross-thread writes.
fn par_rows3(
    par: Parallelism,
    first_row: usize,
    cols: usize,
    a: &mut [u32],
    b: &mut [u32],
    c: &mut [u32],
    f: Rows3Fill<'_>,
) {
    let rows = a.len() / cols;
    debug_assert!(b.len() == a.len() && c.len() == a.len());
    if !par.is_parallel() || rows <= 1 {
        if rows > 0 {
            f(first_row, a, b, c);
        }
        return;
    }
    let cut = (rows / 2) * cols;
    let (a1, a2) = a.split_at_mut(cut);
    let (b1, b2) = b.split_at_mut(cut);
    let (c1, c2) = c.split_at_mut(cut);
    let mid = first_row + rows / 2;
    par.join(
        |p| par_rows3(p, first_row, cols, a1, b1, c1, f),
        |p| par_rows3(p, mid, cols, a2, b2, c2, f),
    );
}

/// γ_w(P) over a thread budget: per-warp distinct-group counts are
/// independent, so chunk sums (integers, summed in range order) combine
/// into exactly the sequential [`distribution`] value.
fn distribution_par(p: &Permutation, width: usize, par: Parallelism) -> f64 {
    let n = p.len();
    if n == 0 {
        return 0.0;
    }
    let warps = n.div_ceil(width);
    let slice = p.as_slice();
    let parts = par.map_ranges(warps, 256, |w0, w1| {
        let mut groups = 0usize;
        let mut scratch: Vec<usize> = Vec::with_capacity(width);
        for w in w0..w1 {
            let warp = &slice[w * width..((w + 1) * width).min(n)];
            scratch.clear();
            scratch.extend(warp.iter().map(|&d| d / width));
            scratch.sort_unstable();
            scratch.dedup();
            groups += scratch.len();
        }
        groups
    });
    let total: usize = parts.iter().sum();
    total as f64 / warps as f64
}

/// True iff every `cols`-chunk of `flat` is a permutation of `0..cols`.
fn rows_are_permutations(flat: &[u32], cols: usize) -> bool {
    let mut seen = vec![false; cols];
    for row in flat.chunks_exact(cols) {
        seen.iter_mut().for_each(|s| *s = false);
        for &d in row {
            let d = d as usize;
            if d >= cols || seen[d] {
                return false;
            }
            seen[d] = true;
        }
    }
    true
}

fn rows_to_perms(flat: &[u32], cols: usize) -> Vec<Permutation> {
    flat.chunks_exact(cols)
        .map(|chunk| Permutation::from_vec_unchecked(chunk.iter().map(|&d| d as usize).collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;

    const W: usize = 8;

    #[test]
    fn plan_recomposes_for_all_families() {
        let n = 1 << 10;
        for fam in families::Family::ALL {
            let p = fam.build(n, 21).unwrap();
            let ir = PlanIr::build(&p, W).unwrap();
            assert_eq!(ir.recompose(), p, "{}", fam.name());
            assert!(ir.matches(&p), "{}", fam.name());
            assert_eq!(ir.fingerprint(), p.fingerprint());
            assert_eq!(ir.width(), W);
        }
    }

    #[test]
    fn parallel_builder_equals_sequential_for_all_families() {
        let n = 1 << 10;
        for fam in families::Family::ALL {
            let p = fam.build(n, 5).unwrap();
            let seq = PlanIr::build(&p, W).unwrap();
            for t in [2usize, 3, 8] {
                let par = PlanIr::build_par(&p, W, t).unwrap();
                assert_eq!(par, seq, "{} threads={t}", fam.name());
            }
        }
    }

    #[test]
    fn parallel_builder_with_one_thread_is_the_sequential_builder() {
        let p = families::random(1 << 10, 44);
        assert_eq!(
            PlanIr::build_par(&p, W, 1).unwrap(),
            PlanIr::build(&p, W).unwrap()
        );
    }

    #[test]
    fn matches_rejects_other_permutations() {
        let n = 1 << 10;
        let ir = PlanIr::build(&families::random(n, 1), W).unwrap();
        assert!(!ir.matches(&families::random(n, 2)));
        assert!(!ir.matches(&families::random(n * 2, 1)));
    }

    #[test]
    fn gather_maps_invert_the_steps() {
        let n = 1 << 10;
        let p = families::random(n, 9);
        let ir = PlanIr::build(&p, W).unwrap();
        let (r, c) = (ir.shape().rows, ir.shape().cols);
        for i in 0..r {
            for j in 0..c {
                let k = ir.step1()[i * c + j] as usize;
                assert_eq!(ir.gather1()[i * c + k] as usize, j);
            }
        }
        for k in 0..c {
            for i in 0..r {
                let di = ir.step2()[k * r + i] as usize;
                assert_eq!(ir.gather2()[k * r + di] as usize, i);
            }
        }
    }

    #[test]
    fn row_perm_staging_matches_flat_steps() {
        let n = 1 << 10;
        let p = families::bit_reversal(n).unwrap();
        let ir = PlanIr::build(&p, W).unwrap();
        let (r, c) = (ir.shape().rows, ir.shape().cols);
        let s1 = ir.step1_row_perms();
        assert_eq!(s1.len(), r);
        for (i, q) in s1.iter().enumerate() {
            assert_eq!(q.len(), c);
            for j in 0..c {
                assert_eq!(q.apply(j), ir.step1()[i * c + j] as usize);
            }
        }
        assert_eq!(ir.step2_col_perms().len(), c);
        assert_eq!(ir.step3_row_perms().len(), r);
    }

    #[test]
    fn explicit_shape_must_match_length() {
        let p = families::random(64, 6);
        let shape = MatrixShape::new(4, 8).unwrap();
        assert!(matches!(
            PlanIr::build_for_shape(&p, shape, W, Strategy::Hybrid),
            Err(PlanError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn unsupported_sizes_are_rejected() {
        assert!(PlanIr::build(&families::random(100, 7), W).is_err());
        assert!(PlanIr::build(&families::random(32, 8), W).is_err());
    }

    #[test]
    fn from_steps_validates_rows() {
        let p = families::random(256, 3);
        let ir = PlanIr::build(&p, W).unwrap();
        let shape = ir.shape();
        // A duplicated entry breaks the permutation property.
        let mut bad = ir.step1().to_vec();
        bad[1] = bad[0];
        let err = PlanIr::from_steps(
            shape,
            W,
            bad,
            ir.step2().to_vec(),
            ir.step3().to_vec(),
            ir.gamma(),
            ir.fingerprint(),
        );
        assert!(matches!(err, Err(PlanError::Codec { .. })));
        // An out-of-range entry is caught, not indexed.
        let mut oob = ir.step2().to_vec();
        oob[0] = u32::MAX;
        let err = PlanIr::from_steps(
            shape,
            W,
            ir.step1().to_vec(),
            oob,
            ir.step3().to_vec(),
            ir.gamma(),
            ir.fingerprint(),
        );
        assert!(matches!(err, Err(PlanError::Codec { .. })));
    }

    #[test]
    fn pass_layouts_follow_the_shape() {
        let p = families::random(1 << 11, 41); // rectangular (odd exponent)
        let ir = PlanIr::build(&p, W).unwrap();
        let MatrixShape { rows: r, cols: c } = ir.shape();
        let [l1, l2, l3] = ir.pass_layouts();
        assert_eq!((l1.rows, l1.cols, l1.fused_transpose), (r, c, true));
        assert_eq!((l2.rows, l2.cols, l2.fused_transpose), (c, r, true));
        assert_eq!((l3.rows, l3.cols, l3.fused_transpose), (r, c, false));
    }

    #[test]
    fn pass_layouts_are_codec_stable() {
        // Derived hints must neither change the wire bytes nor differ
        // between a built plan and its decoded round-trip.
        let p = families::random(1 << 10, 42);
        let ir = PlanIr::build(&p, W).unwrap();
        let bytes = crate::codec::encode(&ir);
        let layouts = ir.pass_layouts();
        assert_eq!(crate::codec::encode(&ir), bytes, "pass_layouts mutated");
        let decoded = crate::codec::decode(&bytes).unwrap();
        assert_eq!(decoded.pass_layouts(), layouts);
    }

    #[test]
    fn staging_rows_fills_the_budget() {
        let layout = PassLayout {
            rows: 2048,
            cols: 2048,
            fused_transpose: true,
        };
        // 256 KB of 1024-element u32 band rows: 64 fit.
        assert_eq!(layout.staging_rows(4, 262_144, 1024), 64);
        // Never more rows than the pass has...
        assert_eq!(layout.staging_rows(4, usize::MAX, 1), 2048);
        // ...and always at least one, even when a row outsizes the budget.
        assert_eq!(layout.staging_rows(8, 1024, 1 << 20), 1);
    }
}
