//! The backend-neutral plan IR: the offline König decomposition of one
//! permutation as a first-class, reusable artifact.
//!
//! The paper's premise is that schedule construction is *offline*: the
//! expensive part of the scheduled permutation — edge-coloring the
//! `c`-regular bipartite transfer multigraph so the three passes are
//! conflict-free — is paid once and the result reused for every
//! application of the permutation. [`PlanIr`] is that result, decoupled
//! from any executor:
//!
//! * the matrix shape `r × c` and the machine width `w` the plan was
//!   built for;
//! * the three **pass permutations** (flat destination maps) produced by
//!   the coloring: step 1 routes each element to the column named by its
//!   edge color, step 2 to its destination row, step 3 to its destination
//!   column (the Figure 6 argument);
//! * the derived flat **gather maps** (per-row inverses) that sweep-based
//!   executors consume directly;
//! * the measured distribution `γ_w(P)` (the scatter/scheduled crossover
//!   input) and the permutation's 64-bit fingerprint (the cache identity).
//!
//! The simulator (`hmm-offperm`) stages the pass permutations into its
//! row/column schedules; the CPU backend (`hmm-native`) copies the gather
//! maps into its fused sweeps; the codec (`crate::codec`) serialises the
//! whole thing for the cross-process store (`crate::store`). None of them
//! re-runs the coloring.

use crate::affine::AffineStep;
use crate::error::{PlanError, Result};
use hmm_graph::{edge_color_par, edge_color_with, Parallelism, RegularBipartite, Strategy};
use hmm_perm::distribution::distribution;
use hmm_perm::{scheduled_shape, Bmmc, MatrixShape, Permutation};

/// A built, backend-neutral permutation plan (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanIr {
    shape: MatrixShape,
    width: usize,
    /// Step 1 destination maps, flattened `r × c`: entry `i·c + j` is the
    /// color (column) element `(i, j)` moves to. Each row is a permutation
    /// of `0..c`.
    step1: Vec<u32>,
    /// Step 2 destination maps, flattened `c × r`: entry `k·r + i` is the
    /// destination row of the color-`k` element in row `i`. Each row is a
    /// permutation of `0..r`.
    step2: Vec<u32>,
    /// Step 3 destination maps, flattened `r × c`: entry `i'·c + k` is the
    /// destination column of the color-`k` element now in row `i'`. Each
    /// row is a permutation of `0..c`.
    step3: Vec<u32>,
    /// Derived gather map for pass 1 (`r × c`): per-row inverse of `step1`.
    g1: Vec<u32>,
    /// Derived gather map for pass 2 (`c × r`): per-row inverse of `step2`.
    g2: Vec<u32>,
    /// Derived gather map for pass 3 (`r × c`): per-row inverse of `step3`.
    g3: Vec<u32>,
    /// Measured distribution γ_w(P) at `width`.
    gamma: f64,
    /// `Permutation::fingerprint()` of the source permutation.
    fingerprint: u64,
    /// Closed-form descriptors of the three gather maps, present exactly
    /// when the plan came out of the BMMC emitter: each is fit from its
    /// materialized map and verified entry-by-entry, so executors may
    /// compute `g[p]` in registers instead of loading it. `None` for
    /// König-colored plans (their gathers are not affine).
    affine: Option<[AffineStep; 3]>,
}

impl PlanIr {
    /// Build the plan for `p` on a width-`width` machine. Consults the
    /// BMMC recognizer first: structured permutations (transpose,
    /// bit-reversal, shuffle/omega, hypercube, ...) get their three pass
    /// permutations emitted in closed form — pure index arithmetic, no
    /// transfer multigraph, no König coloring — which turns a multi-second
    /// cold build at 4M into milliseconds. Everything else falls back to
    /// the general coloring pipeline with the default strategy. Use
    /// [`PlanIr::build_with`] to force the general pipeline.
    pub fn build(p: &Permutation, width: usize) -> Result<Self> {
        if let Some(plan) = Self::build_structured(p, width) {
            return plan;
        }
        Self::build_with(p, width, Strategy::Hybrid)
    }

    /// [`PlanIr::build`] with an explicit coloring strategy.
    pub fn build_with(p: &Permutation, width: usize, strategy: Strategy) -> Result<Self> {
        let shape = scheduled_shape(p.len(), width)?;
        Self::build_for_shape(p, shape, width, strategy)
    }

    /// The parallel plan compiler: [`PlanIr::build`] fanned out over a
    /// scoped-thread budget of `threads`. Every stage parallelises — the
    /// König coloring forks its split tree (and colors connected
    /// components of the transfer graph independently), and the step
    /// fills, row inversions, and γ_w measurement chunk over rows. The
    /// result is **byte-identical** to the sequential builder at any
    /// thread count: the budget relocates work, it never reorders the
    /// deterministic partitions (pinned by `tests/parallel.rs` and the
    /// `hmm-graph` determinism suite). `threads <= 1` *is* the sequential
    /// builder.
    /// Like [`PlanIr::build`], the recognizer runs first: structured
    /// permutations take the closed-form path (also fanned out over the
    /// budget) and skip the coloring entirely.
    pub fn build_par(p: &Permutation, width: usize, threads: usize) -> Result<Self> {
        if let Some(plan) = Self::build_structured_par(p, width, threads) {
            return plan;
        }
        let shape = scheduled_shape(p.len(), width)?;
        Self::build_for_shape_par(p, shape, width, Strategy::Hybrid, threads)
    }

    /// The structured fast path alone: `Some(plan)` when `p` is a BMMC
    /// (affine bit-matrix) permutation, `None` otherwise. The plan's
    /// three pass permutations are emitted in closed form from the bit
    /// matrix — see [`PlanIr::build_bmmc`] for the construction — so no
    /// transfer multigraph or König coloring is ever built. Exposed so
    /// engines can count structured builds separately from colorings.
    pub fn build_structured(p: &Permutation, width: usize) -> Option<Result<Self>> {
        Self::build_structured_par(p, width, 1)
    }

    /// [`PlanIr::build_structured`] over a scoped-thread budget. Like
    /// [`PlanIr::build_par`], the result is byte-identical at any thread
    /// count (every fill is a pure function of the output position).
    pub fn build_structured_par(
        p: &Permutation,
        width: usize,
        threads: usize,
    ) -> Option<Result<Self>> {
        let bmmc = p.as_bmmc()?;
        Some(Self::build_bmmc_par(p, &bmmc, width, threads))
    }

    /// Emit the closed-form plan of a recognized BMMC permutation
    /// (`bmmc` must realise `p`; pass the recognizer's output).
    ///
    /// Split each index into `ρ = log r` row bits and `γ = log c` column
    /// bits, partitioning the bit matrix `M` into blocks `[A B; C D]`
    /// (`A`: row→row, `B`: col→row). Element `(i, j)` is colored
    /// `k = G·i ⊕ j`, where the γ×ρ mixer `G` is completed greedily so
    /// that `A ⊕ B·G` is invertible — such a `G` always exists because
    /// `[A B]` has full row rank (`M` is invertible). Then for a fixed
    /// color `k`, the destination row of row `i`'s color-`k` element is
    /// `(A ⊕ B·G)·i ⊕ B·k ⊕ b_hi`: affine in `i` with invertible linear
    /// part, i.e. each step-2 row is a permutation — exactly the
    /// conflict-freedom the König coloring buys for general
    /// permutations, obtained here by index arithmetic alone. For the
    /// square transpose `G = I`, recovering the classic diagonal
    /// staging of the paper's Figure 4.
    pub fn build_bmmc(p: &Permutation, bmmc: &Bmmc, width: usize) -> Result<Self> {
        Self::build_bmmc_par(p, bmmc, width, 1)
    }

    /// [`PlanIr::build_bmmc`] over a scoped-thread budget (byte-identical
    /// at any thread count).
    pub fn build_bmmc_par(
        p: &Permutation,
        bmmc: &Bmmc,
        width: usize,
        threads: usize,
    ) -> Result<Self> {
        let n = p.len();
        if bmmc.len() != n {
            return Err(PlanError::SizeMismatch {
                expected: n,
                got: bmmc.len(),
            });
        }
        let shape = scheduled_shape(n, width)?;
        let par = Parallelism::threads(threads);
        let (r, c) = (shape.rows, shape.cols);
        debug_assert!(r.is_power_of_two() && c.is_power_of_two());
        let cb = c.trailing_zeros();

        // Per-row color mix `mix[i] = G·i` and the two halves of the
        // destination map `dest(i·c + j) = rowm[i] ⊕ colm[j] ⊕ offset`,
        // each filled by an incremental Gray-style walk (consecutive
        // indices differ in few bits).
        let g = color_mixer(bmmc, r.trailing_zeros(), cb);
        let mix = gray_table(r, |t| g[t]);
        let rowm = gray_table(r, |t| bmmc.col(cb + t as u32));
        let colm = gray_table(c, |t| bmmc.col(t as u32));
        let off = bmmc.offset();
        let cmask = c - 1;

        // Step 1 routes element (i, j) to color k = mix[i] ⊕ j. XOR by a
        // row constant is an involution, so step 1 is its own gather map.
        let mut step1 = vec![0u32; n];
        {
            let mix = &mix;
            par.run_rows(&mut step1, c, |first_row, chunk| {
                for (rr, row) in chunk.chunks_exact_mut(c).enumerate() {
                    let m = mix[first_row + rr];
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot = (m ^ j) as u32;
                    }
                }
            });
        }
        let g1 = step1.clone();

        // Step 2 (`c × r`): the color-k element of row i sits at column
        // j = k ⊕ mix[i]; its destination row is the high half of the
        // affine map.
        let mut step2 = vec![0u32; n];
        {
            let (mix, rowm, colm) = (&mix, &rowm, &colm);
            par.run_rows(&mut step2, r, |first_k, chunk| {
                for (kk, row) in chunk.chunks_exact_mut(r).enumerate() {
                    let k = first_k + kk;
                    for (i, slot) in row.iter_mut().enumerate() {
                        let dest = rowm[i] ^ colm[k ^ mix[i]] ^ off;
                        *slot = (dest >> cb) as u32;
                    }
                }
            });
        }
        let g2 = invert_rows_par(&step2, r, par);

        // Step 3 (`r × c`): recover the source row of the color-k element
        // now in destination row di, and emit its destination column.
        let mut step3 = vec![0u32; n];
        {
            let (mix, rowm, colm, g2) = (&mix, &rowm, &colm, &g2);
            par.run_rows(&mut step3, c, |first_di, chunk| {
                for (dd, row) in chunk.chunks_exact_mut(c).enumerate() {
                    let di = first_di + dd;
                    for (k, slot) in row.iter_mut().enumerate() {
                        let i = g2[k * r + di] as usize;
                        let dest = rowm[i] ^ colm[k ^ mix[i]] ^ off;
                        *slot = (dest & cmask) as u32;
                    }
                }
            });
        }
        let g3 = invert_rows_par(&step3, c, par);

        debug_assert!(rows_are_permutations(&step1, c));
        debug_assert!(rows_are_permutations(&step2, r));
        debug_assert!(rows_are_permutations(&step3, c));

        // Every gather map above is affine over the flat-position bits
        // (each is built from XORs of per-bit constants), so the fit
        // always succeeds; it still runs the full O(n) verification, so
        // a descriptor is attached only when provably exact.
        let affine = (|| {
            Some([
                AffineStep::fit(&g1, c)?,
                AffineStep::fit(&g2, r)?,
                AffineStep::fit(&g3, c)?,
            ])
        })();
        debug_assert!(affine.is_some(), "BMMC gather maps are affine");

        Ok(PlanIr {
            shape,
            width,
            step1,
            step2,
            step3,
            g1,
            g2,
            g3,
            gamma: distribution_par(p, width, par),
            fingerprint: p.fingerprint(),
            affine,
        })
    }

    /// The plan of the composite permutation "apply `first`, then
    /// `self`" — plan fusion. A fused chain costs one 3-sweep memory
    /// round trip where executing the plans back to back costs one per
    /// link. When both plans realise BMMC permutations the composite is
    /// computed as a GF(2) matrix product and emitted closed-form;
    /// otherwise the permutations are composed and the composite planned
    /// once (at most one König build per fused chain). The result is
    /// keyed by the composite permutation's own fingerprint, so engine
    /// caches treat it like any other plan.
    pub fn compose(&self, first: &PlanIr) -> Result<PlanIr> {
        self.compose_par(first, 1)
    }

    /// [`PlanIr::compose`] over a scoped-thread budget.
    pub fn compose_par(&self, first: &PlanIr, threads: usize) -> Result<PlanIr> {
        if first.len() != self.len() {
            return Err(PlanError::SizeMismatch {
                expected: self.len(),
                got: first.len(),
            });
        }
        let p2 = self.recompose();
        let p1 = first.recompose();
        if let (Some(b2), Some(b1)) = (p2.as_bmmc(), p1.as_bmmc()) {
            let fused = b2.compose(&b1);
            return Self::build_bmmc_par(&fused.to_permutation(), &fused, self.width, threads);
        }
        Self::build_par(&p2.compose(&p1), self.width, threads)
    }

    /// [`PlanIr::build_par`] on an explicit shape with an explicit
    /// strategy — the parallel analogue of [`PlanIr::build_for_shape`].
    pub fn build_for_shape_par(
        p: &Permutation,
        shape: MatrixShape,
        width: usize,
        strategy: Strategy,
        threads: usize,
    ) -> Result<Self> {
        if threads <= 1 {
            return Self::build_for_shape(p, shape, width, strategy);
        }
        let n = p.len();
        if shape.len() != n {
            return Err(PlanError::SizeMismatch {
                expected: n,
                got: shape.len(),
            });
        }
        let (r, c) = (shape.rows, shape.cols);
        let par = Parallelism::threads(threads);

        let mut edges: Vec<(usize, usize)> = vec![(0, 0); n];
        par.run_rows(&mut edges, c, |first_row, chunk| {
            let base = first_row * c;
            for (off, e) in chunk.iter_mut().enumerate() {
                let idx = base + off;
                *e = (idx / c, p.apply(idx) / c);
            }
        });
        let graph = RegularBipartite::new(r, edges)?;
        let coloring = edge_color_par(&graph, strategy, par)?;
        debug_assert_eq!(coloring.num_colors, c);

        // The sequential fill scatters into step2 (`c × r`) and step3
        // (`r × c`) from a single walk of the source rows. To keep the
        // parallel fill free of cross-chunk writes (and of `unsafe`), it
        // instead stages two row-major `r × c` temporaries — `s2t[i][k] =
        // destination row` and `dcol[i][k] = destination column` of row
        // `i`'s color-`k` element — whose writes stay inside the walked
        // row (each row's colors are a permutation of `0..c`), then
        // derives step2/step3 with chunk-owned transposing passes.
        let mut step1 = vec![0u32; n];
        let mut s2t = vec![0u32; n];
        let mut dcol = vec![0u32; n];
        let colors = &coloring.colors;
        par_rows3(
            par,
            0,
            c,
            &mut step1,
            &mut s2t,
            &mut dcol,
            &|first_row, s1, s2, dc| {
                let rows = s1.len() / c;
                for rr in 0..rows {
                    let i = first_row + rr;
                    for j in 0..c {
                        let idx = i * c + j;
                        let dest = p.apply(idx);
                        let k = colors[idx];
                        s1[rr * c + j] = k as u32;
                        s2[rr * c + k] = (dest / c) as u32;
                        dc[rr * c + k] = (dest % c) as u32;
                    }
                }
            },
        );

        let mut step2 = vec![0u32; n];
        {
            let s2t = &s2t;
            par.run_rows(&mut step2, r, |first_k, chunk| {
                for (kk, row) in chunk.chunks_exact_mut(r).enumerate() {
                    let k = first_k + kk;
                    for (i, slot) in row.iter_mut().enumerate() {
                        *slot = s2t[i * c + k];
                    }
                }
            });
        }
        drop(s2t);
        let g2 = invert_rows_par(&step2, r, par);

        let mut step3 = vec![0u32; n];
        {
            let (g2, dcol) = (&g2, &dcol);
            par.run_rows(&mut step3, c, |first_di, chunk| {
                for (dd, row) in chunk.chunks_exact_mut(c).enumerate() {
                    let di = first_di + dd;
                    for (k, slot) in row.iter_mut().enumerate() {
                        let i = g2[k * r + di] as usize;
                        *slot = dcol[i * c + k];
                    }
                }
            });
        }
        drop(dcol);
        let g1 = invert_rows_par(&step1, c, par);
        let g3 = invert_rows_par(&step3, c, par);

        Ok(PlanIr {
            shape,
            width,
            step1,
            step2,
            step3,
            g1,
            g2,
            g3,
            gamma: distribution_par(p, width, par),
            fingerprint: p.fingerprint(),
            affine: None,
        })
    }

    /// Build on an explicit matrix shape (exposed for tests with
    /// non-default shapes; `shape.len()` must equal `p.len()`).
    pub fn build_for_shape(
        p: &Permutation,
        shape: MatrixShape,
        width: usize,
        strategy: Strategy,
    ) -> Result<Self> {
        let n = p.len();
        if shape.len() != n {
            return Err(PlanError::SizeMismatch {
                expected: n,
                got: shape.len(),
            });
        }
        let (r, c) = (shape.rows, shape.cols);

        // Bipartite multigraph: source row -> destination row, one edge per
        // element; c-regular since each row holds c elements and receives c.
        let edges: Vec<(usize, usize)> = (0..n).map(|idx| (idx / c, p.apply(idx) / c)).collect();
        let graph = RegularBipartite::new(r, edges)?;
        let coloring = edge_color_with(&graph, strategy)?;
        debug_assert_eq!(coloring.num_colors, c);

        let mut step1 = vec![0u32; n];
        let mut step2 = vec![0u32; n];
        let mut step3 = vec![0u32; n];
        for (idx, slot1) in step1.iter_mut().enumerate() {
            let i = idx / c;
            let dest = p.apply(idx);
            let (di, dj) = (dest / c, dest % c);
            let k = coloring.colors[idx];
            *slot1 = k as u32;
            step2[k * r + i] = di as u32;
            step3[di * c + k] = dj as u32;
        }
        let g1 = invert_rows(&step1, c);
        let g2 = invert_rows(&step2, r);
        let g3 = invert_rows(&step3, c);

        Ok(PlanIr {
            shape,
            width,
            step1,
            step2,
            step3,
            g1,
            g2,
            g3,
            gamma: distribution(p, width),
            fingerprint: p.fingerprint(),
            affine: None,
        })
    }

    /// Reassemble a plan from raw parts — the codec's decode path. The
    /// gather maps are re-derived (they are redundant with the steps, so
    /// the wire format does not carry them), and every step row is
    /// validated to be a permutation of its row: hostile bytes yield
    /// [`PlanError::Codec`], never a panic or an out-of-range gather.
    pub(crate) fn from_steps(
        shape: MatrixShape,
        width: usize,
        step1: Vec<u32>,
        step2: Vec<u32>,
        step3: Vec<u32>,
        gamma: f64,
        fingerprint: u64,
    ) -> Result<Self> {
        let (r, c) = (shape.rows, shape.cols);
        let n = shape.len();
        for (name, flat, cols) in [
            ("step1", &step1, c),
            ("step2", &step2, r),
            ("step3", &step3, c),
        ] {
            if flat.len() != n {
                return Err(PlanError::Codec {
                    reason: format!("{name} has {} entries, shape needs {n}", flat.len()),
                });
            }
            if !rows_are_permutations(flat, cols) {
                return Err(PlanError::Codec {
                    reason: format!("{name} rows are not permutations of 0..{cols}"),
                });
            }
        }
        let g1 = invert_rows(&step1, c);
        let g2 = invert_rows(&step2, r);
        let g3 = invert_rows(&step3, c);
        Ok(PlanIr {
            shape,
            width,
            step1,
            step2,
            step3,
            g1,
            g2,
            g3,
            gamma,
            fingerprint,
            affine: None,
        })
    }

    /// Reassemble a plan from its compact descriptor form — the codec's
    /// decode path for structured plan files, which carry only the three
    /// [`AffineStep`]s (O(log² n) bytes) instead of the maps. Each
    /// descriptor's geometry is checked *before* any size-`n` allocation,
    /// its materialized gather rows are validated as permutations, and
    /// the steps are re-derived by row inversion — so hostile descriptor
    /// bytes yield [`PlanError::Codec`], never a panic or an out-of-range
    /// gather. Fitting on the encode side verified the descriptors
    /// against the built maps entry-by-entry, so this reconstruction is
    /// field-identical to the plan that was encoded.
    pub(crate) fn from_affine(
        shape: MatrixShape,
        width: usize,
        affine: [AffineStep; 3],
        gamma: f64,
        fingerprint: u64,
    ) -> Result<Self> {
        let (r, c) = (shape.rows, shape.cols);
        let n = shape.len();
        let mut gathers = Vec::with_capacity(3);
        for (name, step, cols) in [
            ("affine1", &affine[0], c),
            ("affine2", &affine[1], r),
            ("affine3", &affine[2], c),
        ] {
            step.check_geometry(name, n, cols)?;
            let g = step.materialize();
            if !rows_are_permutations(&g, cols) {
                return Err(PlanError::Codec {
                    reason: format!("{name} does not materialize row permutations of 0..{cols}"),
                });
            }
            gathers.push(g);
        }
        // Row inversion is an involution, so inverting the gathers
        // recovers the steps and `from_steps` re-derives these exact
        // gather maps.
        let step3 = invert_rows(&gathers.pop().expect("three gathers"), c);
        let step2 = invert_rows(&gathers.pop().expect("two gathers"), r);
        let step1 = invert_rows(&gathers.pop().expect("one gather"), c);
        let mut ir = Self::from_steps(shape, width, step1, step2, step3, gamma, fingerprint)?;
        ir.affine = Some(affine);
        Ok(ir)
    }

    /// The matrix shape of the three passes.
    pub fn shape(&self) -> MatrixShape {
        self.shape
    }

    /// The machine width the plan was built for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of elements the plan permutes.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// True for a zero-element plan (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The measured distribution γ_w(P) recorded at build time.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The 64-bit fingerprint of the source permutation.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Step 1 flat destination map (`r × c`; entry = color).
    pub fn step1(&self) -> &[u32] {
        &self.step1
    }

    /// Step 2 flat destination map (`c × r`; entry = destination row).
    pub fn step2(&self) -> &[u32] {
        &self.step2
    }

    /// Step 3 flat destination map (`r × c`; entry = destination column).
    pub fn step3(&self) -> &[u32] {
        &self.step3
    }

    /// Pass 1 gather map (`r × c`): `out[i][k] = in[i][g1[i·c + k]]`.
    pub fn gather1(&self) -> &[u32] {
        &self.g1
    }

    /// Pass 2 gather map (`c × r`), on the transposed matrix.
    pub fn gather2(&self) -> &[u32] {
        &self.g2
    }

    /// Pass 3 gather map (`r × c`).
    pub fn gather3(&self) -> &[u32] {
        &self.g3
    }

    /// Closed-form descriptors of the three gather maps (pass order), or
    /// `None` for König-colored plans. When present, each descriptor is
    /// verified-exact against its map: `affine[k].eval(p) == gather(p)`
    /// for every flat position, so computed-index executors are
    /// byte-equivalent to map-loading ones by construction.
    pub fn affine(&self) -> Option<&[AffineStep; 3]> {
        self.affine.as_ref()
    }

    /// Per-pass geometry hints for sweep executors: the matrix view each
    /// of the three passes runs over, in execution order (pass 2 runs on
    /// the transposed matrix), and whether a fused executor folds a
    /// transpose into the pass's write side.
    ///
    /// The layouts are **derived** from the stored shape — like the
    /// gather maps, they are never serialised, so exposing them changes
    /// no wire byte and a decoded plan reports exactly the layouts of
    /// the plan that was encoded.
    pub fn pass_layouts(&self) -> [PassLayout; 3] {
        let MatrixShape { rows: r, cols: c } = self.shape;
        [
            PassLayout {
                rows: r,
                cols: c,
                fused_transpose: true,
            },
            PassLayout {
                rows: c,
                cols: r,
                fused_transpose: true,
            },
            PassLayout {
                rows: r,
                cols: c,
                fused_transpose: false,
            },
        ]
    }

    /// Flat destination of source index `idx` under the composed three
    /// steps.
    #[inline]
    fn dest_of(&self, idx: usize) -> usize {
        let (r, c) = (self.shape.rows, self.shape.cols);
        let (i, j) = (idx / c, idx % c);
        let k = self.step1[i * c + j] as usize;
        let di = self.step2[k * r + i] as usize;
        let dj = self.step3[di * c + k] as usize;
        di * c + dj
    }

    /// Compose the three steps back into the flat permutation the plan
    /// realises.
    pub fn recompose(&self) -> Permutation {
        let map: Vec<usize> = (0..self.len()).map(|idx| self.dest_of(idx)).collect();
        Permutation::from_vec_unchecked(map)
    }

    /// True iff this plan realises exactly `p` — the collision check every
    /// store hit runs before a decoded plan is trusted (an O(n) walk, no
    /// allocation).
    pub fn matches(&self, p: &Permutation) -> bool {
        self.len() == p.len() && (0..self.len()).all(|idx| self.dest_of(idx) == p.apply(idx))
    }

    /// Check the plan's internal contract: all six arrays sized to the
    /// shape, every step row a permutation of its row, and every gather
    /// map the exact per-row inverse of its step. Violations yield
    /// [`PlanError::Invalid`].
    ///
    /// This is the one-time guard between a `PlanIr` of unknown
    /// provenance and the sweep executors: the SIMD gather tiers clamp
    /// indices instead of bounds-checking them (`hmm-native`'s
    /// `simd.rs`), so a plan with out-of-range or colliding entries
    /// would produce **wrong output silently**. Every front door that
    /// admits foreign plan state — `codec::decode`, `PlanStore::load`,
    /// `NativeScheduled::from_plan` — runs this check so corruption
    /// surfaces as a typed error, never as wrong data.
    pub fn validate(&self) -> Result<()> {
        let (r, c) = (self.shape.rows, self.shape.cols);
        let n = self.shape.len();
        let arrays: [(&str, &[u32], usize); 6] = [
            ("step1", &self.step1, c),
            ("step2", &self.step2, r),
            ("step3", &self.step3, c),
            ("gather1", &self.g1, c),
            ("gather2", &self.g2, r),
            ("gather3", &self.g3, c),
        ];
        for (name, flat, cols) in arrays {
            if flat.len() != n {
                return Err(PlanError::Invalid {
                    reason: format!("{name} has {} entries, shape needs {n}", flat.len()),
                });
            }
            if !rows_are_permutations(flat, cols) {
                return Err(PlanError::Invalid {
                    reason: format!("{name} rows are not permutations of 0..{cols}"),
                });
            }
        }
        for (name, step, gather, cols) in [
            ("gather1", &self.step1, &self.g1, c),
            ("gather2", &self.step2, &self.g2, r),
            ("gather3", &self.step3, &self.g3, c),
        ] {
            for (row_idx, row) in step.chunks_exact(cols).enumerate() {
                let base = row_idx * cols;
                for (j, &d) in row.iter().enumerate() {
                    if gather[base + d as usize] as usize != j {
                        return Err(PlanError::Invalid {
                            reason: format!(
                                "{name} is not the row inverse of its step at row {row_idx}"
                            ),
                        });
                    }
                }
            }
        }
        if let Some(affine) = &self.affine {
            for (name, step, gather) in [
                ("affine1", &affine[0], &self.g1),
                ("affine2", &affine[1], &self.g2),
                ("affine3", &affine[2], &self.g3),
            ] {
                if !step.matches_map(gather) {
                    return Err(PlanError::Invalid {
                        reason: format!("{name} descriptor does not reproduce its gather map"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Test seam: flip one bit of a derived gather-map entry, violating
    /// the plan contract the way in-memory corruption would (the codec
    /// cannot produce this state — gather maps are re-derived on decode).
    /// Pass is 1-based; out-of-range arguments are clamped.
    #[doc(hidden)]
    pub fn corrupt_gather_entry_for_tests(&mut self, pass: usize, idx: usize) {
        let map = match pass {
            1 => &mut self.g1,
            2 => &mut self.g2,
            _ => &mut self.g3,
        };
        let idx = idx.min(map.len().saturating_sub(1));
        map[idx] ^= 1;
    }

    /// The step-1 destination maps as one [`Permutation`] per row — the
    /// staging form the simulator's row-wise schedules consume.
    pub fn step1_row_perms(&self) -> Vec<Permutation> {
        rows_to_perms(&self.step1, self.shape.cols)
    }

    /// The step-2 destination maps as one [`Permutation`] per column.
    pub fn step2_col_perms(&self) -> Vec<Permutation> {
        rows_to_perms(&self.step2, self.shape.rows)
    }

    /// The step-3 destination maps as one [`Permutation`] per row.
    pub fn step3_row_perms(&self) -> Vec<Permutation> {
        rows_to_perms(&self.step3, self.shape.cols)
    }
}

/// Geometry of one executor sweep, derived from the plan shape (see
/// [`PlanIr::pass_layouts`]): the `rows × cols` matrix view the pass
/// iterates, where every gather map indexes within one `cols`-element
/// row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassLayout {
    /// Input rows of this pass's matrix view.
    pub rows: usize,
    /// Row length — the range the pass's gather indices live in.
    pub cols: usize,
    /// True when a fused executor writes this pass's output transposed
    /// (passes 1 and 2 of the three-sweep CPU executor).
    pub fused_transpose: bool,
}

impl PassLayout {
    /// How many of this pass's input rows a staging buffer of
    /// `stage_bytes` holds, when each staged row carries `band_cols`
    /// elements of `elem_bytes` bytes (a fused executor stages only its
    /// worker's band of the row): as many as fit, clamped to
    /// `1..=rows`.
    pub fn staging_rows(&self, elem_bytes: usize, stage_bytes: usize, band_cols: usize) -> usize {
        (stage_bytes / (band_cols * elem_bytes).max(1)).clamp(1, self.rows.max(1))
    }
}

/// Derive the γ×ρ color mixer `G` of the closed-form BMMC plan (see
/// [`PlanIr::build_bmmc`]): one γ-bit column per row bit, chosen so that
/// `A ⊕ B·G` is invertible, where `A`/`B` are the row-part blocks of the
/// bit matrix over the row/column bits.
///
/// Greedy GF(2) rank completion: columns of `A` that extend the running
/// basis keep `g_t = 0`; each dependent column is repaired with the first
/// column of `B` that restores independence (`g_t = e_u`). `[A B]` has
/// full row rank ρ because the whole matrix is invertible, so while the
/// basis is deficient some unused `B` column is always independent —
/// `col_a[t] ⊕ col_b[u]` extends the basis exactly when `col_b[u]` does,
/// since `col_a[t]` already lies in its span.
fn color_mixer(bmmc: &Bmmc, row_bits: u32, col_bits: u32) -> Vec<usize> {
    let rb = row_bits as usize;
    let col_a: Vec<usize> = (0..row_bits)
        .map(|t| bmmc.col(col_bits + t) >> col_bits)
        .collect();
    let col_b: Vec<usize> = (0..col_bits).map(|u| bmmc.col(u) >> col_bits).collect();
    // Leading-bit echelon basis of GF(2)^ρ: by_msb[b] is the inserted
    // vector whose highest set bit is b (or 0 when that slot is free).
    let mut by_msb = vec![0usize; rb.max(1)];
    fn reduce(by_msb: &[usize], mut v: usize) -> usize {
        while v != 0 {
            let b = by_msb[v.ilog2() as usize];
            if b == 0 {
                return v;
            }
            v ^= b;
        }
        0
    }
    let mut g = vec![0usize; rb];
    let mut deferred = Vec::new();
    for (t, &ca) in col_a.iter().enumerate() {
        let red = reduce(&by_msb, ca);
        if red != 0 {
            by_msb[red.ilog2() as usize] = red;
        } else {
            deferred.push(t);
        }
    }
    let mut u = 0usize;
    for t in deferred {
        loop {
            debug_assert!(u < col_b.len(), "invertible BMMC always completes");
            let red = reduce(&by_msb, col_a[t] ^ col_b[u]);
            u += 1;
            if red != 0 {
                by_msb[red.ilog2() as usize] = red;
                g[t] = 1usize << (u - 1);
                break;
            }
        }
    }
    g
}

/// Tabulate `f_fold(x) = XOR of col(t) over the set bits t of x` for
/// `x` in `0..len` by an incremental Gray-style walk: each step XORs
/// only the columns of the bits that changed, so the fill is O(len)
/// amortized.
fn gray_table(len: usize, col: impl Fn(usize) -> usize) -> Vec<usize> {
    let mut out = vec![0usize; len];
    let mut val = 0usize;
    for (i, slot) in out.iter_mut().enumerate().skip(1) {
        let mut changed = (i - 1) ^ i;
        while changed != 0 {
            val ^= col(changed.trailing_zeros() as usize);
            changed &= changed - 1;
        }
        *slot = val;
    }
    out
}

/// Per-row inverse of a flat destination map: `out[row·cols + flat[row·cols
/// + j]] = j`. Requires each row to be a permutation of `0..cols`.
fn invert_rows(flat: &[u32], cols: usize) -> Vec<u32> {
    let mut out = vec![0u32; flat.len()];
    for (row_idx, row) in flat.chunks_exact(cols).enumerate() {
        let base = row_idx * cols;
        for (j, &d) in row.iter().enumerate() {
            out[base + d as usize] = j as u32;
        }
    }
    out
}

/// Per-row inverse over a thread budget: identical output to
/// [`invert_rows`] (each output row is owned by exactly one chunk).
fn invert_rows_par(flat: &[u32], cols: usize, par: Parallelism) -> Vec<u32> {
    let mut out = vec![0u32; flat.len()];
    par.run_rows(&mut out, cols, |first_row, chunk| {
        for (rr, orow) in chunk.chunks_exact_mut(cols).enumerate() {
            let base = (first_row + rr) * cols;
            for (j, &d) in flat[base..base + cols].iter().enumerate() {
                orow[d as usize] = j as u32;
            }
        }
    });
    out
}

/// The filler a [`par_rows3`] pass runs on each aligned three-buffer row
/// chunk: `(first_row, rows_of_a, rows_of_b, rows_of_c)`.
type Rows3Fill<'a> = &'a (dyn Fn(usize, &mut [u32], &mut [u32], &mut [u32]) + Sync);

/// Fork/join three equally-shaped row-major buffers into aligned row
/// chunks, so one pass can fill all three without cross-thread writes.
fn par_rows3(
    par: Parallelism,
    first_row: usize,
    cols: usize,
    a: &mut [u32],
    b: &mut [u32],
    c: &mut [u32],
    f: Rows3Fill<'_>,
) {
    let rows = a.len() / cols;
    debug_assert!(b.len() == a.len() && c.len() == a.len());
    if !par.is_parallel() || rows <= 1 {
        if rows > 0 {
            f(first_row, a, b, c);
        }
        return;
    }
    let cut = (rows / 2) * cols;
    let (a1, a2) = a.split_at_mut(cut);
    let (b1, b2) = b.split_at_mut(cut);
    let (c1, c2) = c.split_at_mut(cut);
    let mid = first_row + rows / 2;
    par.join(
        |p| par_rows3(p, first_row, cols, a1, b1, c1, f),
        |p| par_rows3(p, mid, cols, a2, b2, c2, f),
    );
}

/// γ_w(P) over a thread budget: per-warp distinct-group counts are
/// independent, so chunk sums (integers, summed in range order) combine
/// into exactly the sequential [`distribution`] value.
fn distribution_par(p: &Permutation, width: usize, par: Parallelism) -> f64 {
    let n = p.len();
    if n == 0 {
        return 0.0;
    }
    let warps = n.div_ceil(width);
    let slice = p.as_slice();
    let parts = par.map_ranges(warps, 256, |w0, w1| {
        let mut groups = 0usize;
        let mut scratch: Vec<usize> = Vec::with_capacity(width);
        for w in w0..w1 {
            let warp = &slice[w * width..((w + 1) * width).min(n)];
            scratch.clear();
            scratch.extend(warp.iter().map(|&d| d / width));
            scratch.sort_unstable();
            scratch.dedup();
            groups += scratch.len();
        }
        groups
    });
    let total: usize = parts.iter().sum();
    total as f64 / warps as f64
}

/// True iff every `cols`-chunk of `flat` is a permutation of `0..cols`.
fn rows_are_permutations(flat: &[u32], cols: usize) -> bool {
    let mut seen = vec![false; cols];
    for row in flat.chunks_exact(cols) {
        seen.iter_mut().for_each(|s| *s = false);
        for &d in row {
            let d = d as usize;
            if d >= cols || seen[d] {
                return false;
            }
            seen[d] = true;
        }
    }
    true
}

fn rows_to_perms(flat: &[u32], cols: usize) -> Vec<Permutation> {
    flat.chunks_exact(cols)
        .map(|chunk| Permutation::from_vec_unchecked(chunk.iter().map(|&d| d as usize).collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;

    const W: usize = 8;

    #[test]
    fn plan_recomposes_for_all_families() {
        let n = 1 << 10;
        for fam in families::Family::ALL {
            let p = fam.build(n, 21).unwrap();
            let ir = PlanIr::build(&p, W).unwrap();
            assert_eq!(ir.recompose(), p, "{}", fam.name());
            assert!(ir.matches(&p), "{}", fam.name());
            assert_eq!(ir.fingerprint(), p.fingerprint());
            assert_eq!(ir.width(), W);
        }
    }

    #[test]
    fn parallel_builder_equals_sequential_for_all_families() {
        let n = 1 << 10;
        for fam in families::Family::ALL {
            let p = fam.build(n, 5).unwrap();
            let seq = PlanIr::build(&p, W).unwrap();
            for t in [2usize, 3, 8] {
                let par = PlanIr::build_par(&p, W, t).unwrap();
                assert_eq!(par, seq, "{} threads={t}", fam.name());
            }
        }
    }

    #[test]
    fn parallel_builder_with_one_thread_is_the_sequential_builder() {
        let p = families::random(1 << 10, 44);
        assert_eq!(
            PlanIr::build_par(&p, W, 1).unwrap(),
            PlanIr::build(&p, W).unwrap()
        );
    }

    #[test]
    fn matches_rejects_other_permutations() {
        let n = 1 << 10;
        let ir = PlanIr::build(&families::random(n, 1), W).unwrap();
        assert!(!ir.matches(&families::random(n, 2)));
        assert!(!ir.matches(&families::random(n * 2, 1)));
    }

    #[test]
    fn gather_maps_invert_the_steps() {
        let n = 1 << 10;
        let p = families::random(n, 9);
        let ir = PlanIr::build(&p, W).unwrap();
        let (r, c) = (ir.shape().rows, ir.shape().cols);
        for i in 0..r {
            for j in 0..c {
                let k = ir.step1()[i * c + j] as usize;
                assert_eq!(ir.gather1()[i * c + k] as usize, j);
            }
        }
        for k in 0..c {
            for i in 0..r {
                let di = ir.step2()[k * r + i] as usize;
                assert_eq!(ir.gather2()[k * r + di] as usize, i);
            }
        }
    }

    #[test]
    fn row_perm_staging_matches_flat_steps() {
        let n = 1 << 10;
        let p = families::bit_reversal(n).unwrap();
        let ir = PlanIr::build(&p, W).unwrap();
        let (r, c) = (ir.shape().rows, ir.shape().cols);
        let s1 = ir.step1_row_perms();
        assert_eq!(s1.len(), r);
        for (i, q) in s1.iter().enumerate() {
            assert_eq!(q.len(), c);
            for j in 0..c {
                assert_eq!(q.apply(j), ir.step1()[i * c + j] as usize);
            }
        }
        assert_eq!(ir.step2_col_perms().len(), c);
        assert_eq!(ir.step3_row_perms().len(), r);
    }

    #[test]
    fn explicit_shape_must_match_length() {
        let p = families::random(64, 6);
        let shape = MatrixShape::new(4, 8).unwrap();
        assert!(matches!(
            PlanIr::build_for_shape(&p, shape, W, Strategy::Hybrid),
            Err(PlanError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn unsupported_sizes_are_rejected() {
        assert!(PlanIr::build(&families::random(100, 7), W).is_err());
        assert!(PlanIr::build(&families::random(32, 8), W).is_err());
    }

    #[test]
    fn from_steps_validates_rows() {
        let p = families::random(256, 3);
        let ir = PlanIr::build(&p, W).unwrap();
        let shape = ir.shape();
        // A duplicated entry breaks the permutation property.
        let mut bad = ir.step1().to_vec();
        bad[1] = bad[0];
        let err = PlanIr::from_steps(
            shape,
            W,
            bad,
            ir.step2().to_vec(),
            ir.step3().to_vec(),
            ir.gamma(),
            ir.fingerprint(),
        );
        assert!(matches!(err, Err(PlanError::Codec { .. })));
        // An out-of-range entry is caught, not indexed.
        let mut oob = ir.step2().to_vec();
        oob[0] = u32::MAX;
        let err = PlanIr::from_steps(
            shape,
            W,
            ir.step1().to_vec(),
            oob,
            ir.step3().to_vec(),
            ir.gamma(),
            ir.fingerprint(),
        );
        assert!(matches!(err, Err(PlanError::Codec { .. })));
    }

    #[test]
    fn pass_layouts_follow_the_shape() {
        let p = families::random(1 << 11, 41); // rectangular (odd exponent)
        let ir = PlanIr::build(&p, W).unwrap();
        let MatrixShape { rows: r, cols: c } = ir.shape();
        let [l1, l2, l3] = ir.pass_layouts();
        assert_eq!((l1.rows, l1.cols, l1.fused_transpose), (r, c, true));
        assert_eq!((l2.rows, l2.cols, l2.fused_transpose), (c, r, true));
        assert_eq!((l3.rows, l3.cols, l3.fused_transpose), (r, c, false));
    }

    #[test]
    fn pass_layouts_are_codec_stable() {
        // Derived hints must neither change the wire bytes nor differ
        // between a built plan and its decoded round-trip.
        let p = families::random(1 << 10, 42);
        let ir = PlanIr::build(&p, W).unwrap();
        let bytes = crate::codec::encode(&ir);
        let layouts = ir.pass_layouts();
        assert_eq!(crate::codec::encode(&ir), bytes, "pass_layouts mutated");
        let decoded = crate::codec::decode(&bytes).unwrap();
        assert_eq!(decoded.pass_layouts(), layouts);
    }

    #[test]
    fn structured_plans_realise_their_permutations() {
        let n = 1 << 12;
        let cases: Vec<(&str, hmm_perm::Permutation)> = vec![
            ("identity", hmm_perm::Permutation::identity(n)),
            ("shuffle", families::shuffle(n).unwrap()),
            ("bit_reversal", families::bit_reversal(n).unwrap()),
            ("transpose", families::transpose_square(n).unwrap()),
            ("butterfly", families::butterfly(n, 5).unwrap()),
            ("gray", families::gray_code(n).unwrap()),
        ];
        for (name, p) in cases {
            let ir = PlanIr::build_structured(&p, W)
                .unwrap_or_else(|| panic!("{name} not structured"))
                .unwrap();
            assert!(ir.matches(&p), "{name}");
            assert_eq!(ir.recompose(), p, "{name}");
            assert_eq!(ir.fingerprint(), p.fingerprint(), "{name}");
            ir.validate().unwrap();
            // Same derived identity as the general König plan.
            let shape = scheduled_shape(n, W).unwrap();
            let general = PlanIr::build_for_shape(&p, shape, W, Strategy::Hybrid).unwrap();
            assert_eq!(ir.shape(), general.shape(), "{name}");
            assert_eq!(ir.width(), general.width(), "{name}");
            assert_eq!(ir.gamma(), general.gamma(), "{name}");
            assert_eq!(ir.fingerprint(), general.fingerprint(), "{name}");
            assert_eq!(general.recompose(), ir.recompose(), "{name}");
        }
    }

    #[test]
    fn structured_plans_carry_exact_affine_descriptors() {
        let n = 1 << 12;
        for (name, p) in [
            ("shuffle", families::shuffle(n).unwrap()),
            ("bit_reversal", families::bit_reversal(n).unwrap()),
            ("transpose", families::transpose_square(n).unwrap()),
        ] {
            let ir = PlanIr::build(&p, W).unwrap();
            let aff = ir
                .affine()
                .unwrap_or_else(|| panic!("{name} has no descriptors"));
            let (r, c) = (ir.shape().rows, ir.shape().cols);
            for (which, step, map, cols) in [
                ("g1", &aff[0], ir.gather1(), c),
                ("g2", &aff[1], ir.gather2(), r),
                ("g3", &aff[2], ir.gather3(), c),
            ] {
                assert!(step.matches_map(map), "{name}/{which}");
                assert_eq!(step.materialize().as_slice(), map, "{name}/{which}");
                assert_eq!(step.col_bits(), cols.trailing_zeros(), "{name}/{which}");
                for p in [0usize, 1, 7, n / 2, n - 1] {
                    assert_eq!(step.eval(p), map[p], "{name}/{which} at {p}");
                    assert_eq!(
                        step.row_base(p / cols) ^ step.eval(p % cols) ^ step.offset(),
                        map[p],
                        "{name}/{which} split at {p}"
                    );
                }
            }
        }
        // König-colored plans carry none.
        let ir = PlanIr::build(&families::random(n, 3), W).unwrap();
        assert!(ir.affine().is_none());
    }

    #[test]
    fn validate_catches_descriptor_gather_drift() {
        let p = families::shuffle(1 << 10).unwrap();
        let ir = PlanIr::build(&p, W).unwrap();
        assert!(ir.affine().is_some());
        ir.validate().unwrap();
        for pass in 1..=3 {
            let mut bad = ir.clone();
            bad.corrupt_gather_entry_for_tests(pass, 3);
            assert!(
                matches!(bad.validate(), Err(PlanError::Invalid { .. })),
                "pass {pass}"
            );
        }
    }

    #[test]
    fn structured_detection_skips_random_permutations() {
        assert!(PlanIr::build_structured(&families::random(1 << 10, 3), W).is_none());
        // Rectangular shapes (odd exponent) take the fast path too.
        let p = families::shuffle(1 << 11).unwrap();
        let ir = PlanIr::build_structured(&p, W).unwrap().unwrap();
        assert!(ir.matches(&p));
        assert_ne!(ir.shape().rows, ir.shape().cols);
    }

    #[test]
    fn structured_builder_is_thread_invariant() {
        for n in [1 << 10, 1 << 13] {
            let p = families::bit_reversal(n).unwrap();
            let seq = PlanIr::build(&p, W).unwrap();
            for t in [2usize, 5, 16] {
                assert_eq!(PlanIr::build_par(&p, W, t).unwrap(), seq, "n={n} t={t}");
            }
        }
    }

    #[test]
    fn bmmc_builder_rejects_mismatched_sizes() {
        let p = families::shuffle(1 << 10).unwrap();
        let small = families::shuffle(1 << 8).unwrap().as_bmmc().unwrap();
        assert!(matches!(
            PlanIr::build_bmmc(&p, &small, W),
            Err(PlanError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn compose_fuses_two_plans_into_one() {
        let n = 1 << 10;
        // BMMC ∘ BMMC: matrix-product path.
        let p1 = families::shuffle(n).unwrap();
        let p2 = families::bit_reversal(n).unwrap();
        let plan1 = PlanIr::build(&p1, W).unwrap();
        let plan2 = PlanIr::build(&p2, W).unwrap();
        let fused = plan2.compose(&plan1).unwrap();
        let expect = p2.compose(&p1);
        assert!(fused.matches(&expect));
        assert_eq!(fused.fingerprint(), expect.fingerprint());
        // General ∘ general: compose-then-plan-once path.
        let q1 = families::random(n, 61);
        let q2 = families::random(n, 62);
        let fused = PlanIr::build(&q2, W)
            .unwrap()
            .compose(&PlanIr::build(&q1, W).unwrap())
            .unwrap();
        assert!(fused.matches(&q2.compose(&q1)));
        // Mixed structured/general works through the general path.
        let fused = PlanIr::build(&q2, W).unwrap().compose(&plan1).unwrap();
        assert!(fused.matches(&q2.compose(&p1)));
        // Size mismatch is a typed error.
        let other = PlanIr::build(&families::random(1 << 12, 8), W).unwrap();
        assert!(matches!(
            other.compose(&plan1),
            Err(PlanError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn compose_applied_once_equals_applying_both() {
        let n = 1 << 10;
        let p1 = families::random(n, 71);
        let p2 = families::bit_reversal(n).unwrap();
        let fused = PlanIr::build(&p2, W)
            .unwrap()
            .compose_par(&PlanIr::build(&p1, W).unwrap(), 4)
            .unwrap();
        let src: Vec<u32> = (0..n as u32).collect();
        let mut mid = vec![0u32; n];
        let mut two_step = vec![0u32; n];
        p1.permute(&src, &mut mid).unwrap();
        p2.permute(&mid, &mut two_step).unwrap();
        let mut one_step = vec![0u32; n];
        fused.recompose().permute(&src, &mut one_step).unwrap();
        assert_eq!(one_step, two_step);
    }

    #[test]
    fn validate_accepts_built_plans_and_catches_corruption() {
        let p = families::random(1 << 10, 17);
        let ir = PlanIr::build(&p, W).unwrap();
        ir.validate().unwrap();
        // A flipped gather entry breaks row bijectivity or inverse
        // consistency — either way validate reports it.
        for pass in 1..=3 {
            let mut bad = ir.clone();
            bad.corrupt_gather_entry_for_tests(pass, 5);
            assert!(
                matches!(bad.validate(), Err(PlanError::Invalid { .. })),
                "pass {pass}"
            );
        }
    }

    #[test]
    fn staging_rows_fills_the_budget() {
        let layout = PassLayout {
            rows: 2048,
            cols: 2048,
            fused_transpose: true,
        };
        // 256 KB of 1024-element u32 band rows: 64 fit.
        assert_eq!(layout.staging_rows(4, 262_144, 1024), 64);
        // Never more rows than the pass has...
        assert_eq!(layout.staging_rows(4, usize::MAX, 1), 2048);
        // ...and always at least one, even when a row outsizes the budget.
        assert_eq!(layout.staging_rows(8, 1024, 1 << 20), 1);
    }
}
