//! Per-pass affine index descriptors: the closed form of a structured
//! plan's gather maps.
//!
//! For a BMMC (GF(2)-affine) permutation, the closed-form emitter
//! (`PlanIr::build_bmmc`) produces three gather maps that are themselves
//! affine over the bits of the flat element position: there is a mask
//! `cols[b]` per position bit and an offset such that
//!
//! ```text
//! g[p] = offset ⊕ (XOR over set bits b of p) cols[b]
//! ```
//!
//! An [`AffineStep`] is that function as data — `O(log n)` words instead
//! of the `O(n)` materialized map — and is what the computed-index
//! kernels evaluate in registers instead of loading `g[p]` from memory.
//! Descriptors are **fit from the materialized map and verified against
//! every entry** (the same probe-then-Gray-walk scheme as
//! `Permutation::as_bmmc`), so an attached descriptor is exact by
//! construction, never a heuristic.
//!
//! Geometry: a descriptor belongs to one pass whose matrix view has
//! `2^col_bits` columns. Gather indices live in `0..2^col_bits`, and the
//! flat position `p = row · 2^col_bits + j` splits cleanly: masks
//! `cols[..col_bits]` belong to the in-row coordinate `j` (the per-lane
//! part a SIMD kernel folds), masks `cols[col_bits..]` belong to the row
//! index (folded once per row into [`AffineStep::row_base`]).

use crate::error::{PlanError, Result};

/// The affine closed form of one pass's gather map (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineStep {
    /// log₂ of the pass's row length; indices are `< 2^col_bits`.
    col_bits: u32,
    /// One mask per flat-position bit: `cols[b]` is XORed into the index
    /// when bit `b` of the position is set. `cols.len()` is log₂ of the
    /// pass's element count.
    cols: Vec<u32>,
    /// The index of flat position 0.
    offset: u32,
}

impl AffineStep {
    /// Fit a descriptor to a materialized gather map over rows of
    /// `cols` entries, verifying it reproduces **every** entry: `None`
    /// means the map is not affine (or the geometry is not a power of
    /// two), never a wrong descriptor.
    pub fn fit(map: &[u32], cols: usize) -> Option<Self> {
        let n = map.len();
        if n == 0 || !n.is_power_of_two() || cols == 0 || !cols.is_power_of_two() {
            return None;
        }
        let bits = n.trailing_zeros();
        let offset = map[0];
        let masks: Vec<u32> = (0..bits).map(|b| map[1usize << b] ^ offset).collect();
        let step = AffineStep {
            col_bits: cols.trailing_zeros(),
            cols: masks,
            offset,
        };
        if step.matches_map(map) {
            Some(step)
        } else {
            None
        }
    }

    /// Reassemble from raw parts — the codec's decode path. Callers must
    /// run [`AffineStep::check_geometry`] before trusting the result.
    pub(crate) fn from_parts(col_bits: u32, cols: Vec<u32>, offset: u32) -> Self {
        AffineStep {
            col_bits,
            cols,
            offset,
        }
    }

    /// log₂ of the pass's row length.
    #[inline]
    pub fn col_bits(&self) -> u32 {
        self.col_bits
    }

    /// The per-bit masks, low (in-row) bits first.
    #[inline]
    pub fn masks(&self) -> &[u32] {
        &self.cols
    }

    /// Masks of the in-row coordinate bits — what a per-lane kernel
    /// folds for each `j` within a row.
    #[inline]
    pub fn lo_masks(&self) -> &[u32] {
        &self.cols[..self.col_bits as usize]
    }

    /// The index of flat position 0.
    #[inline]
    pub fn offset(&self) -> u32 {
        self.offset
    }

    /// The row-constant part of the fold: `offset` XOR the masks of the
    /// row bits — so `eval(row · 2^col_bits + j) = row_base(row) ⊕
    /// fold(lo_masks, j)`.
    #[inline]
    pub fn row_base(&self, row: usize) -> u32 {
        let mut v = self.offset;
        let mut bits = row;
        while bits != 0 {
            v ^= self.cols[self.col_bits as usize + bits.trailing_zeros() as usize];
            bits &= bits - 1;
        }
        v
    }

    /// Evaluate the fold at flat position `p`.
    #[inline]
    pub fn eval(&self, p: usize) -> u32 {
        let mut v = self.offset;
        let mut bits = p;
        while bits != 0 {
            v ^= self.cols[bits.trailing_zeros() as usize];
            bits &= bits - 1;
        }
        v
    }

    /// True iff the descriptor reproduces `map` exactly — an O(n)
    /// incremental Gray-style walk (each step XORs only the masks of the
    /// changed bits).
    pub fn matches_map(&self, map: &[u32]) -> bool {
        if self.cols.len() >= usize::BITS as usize || map.len() != 1usize << self.cols.len() {
            return false;
        }
        let limit = 1u64 << self.col_bits.min(32);
        if u64::from(self.offset) >= limit || self.cols.iter().any(|&m| u64::from(m) >= limit) {
            return false;
        }
        let mut val = self.offset;
        if map[0] != val {
            return false;
        }
        for (i, &entry) in map.iter().enumerate().skip(1) {
            let mut changed = (i - 1) ^ i;
            while changed != 0 {
                val ^= self.cols[changed.trailing_zeros() as usize];
                changed &= changed - 1;
            }
            if entry != val {
                return false;
            }
        }
        true
    }

    /// Materialize the full gather map — the lazy-rebuild path for
    /// consumers that need the `O(n)` array (same Gray-style walk as the
    /// verifier).
    pub fn materialize(&self) -> Vec<u32> {
        let n = 1usize << self.cols.len();
        let mut out = vec![0u32; n];
        let mut val = self.offset;
        out[0] = val;
        for (i, slot) in out.iter_mut().enumerate().skip(1) {
            let mut changed = (i - 1) ^ i;
            while changed != 0 {
                val ^= self.cols[changed.trailing_zeros() as usize];
                changed &= changed - 1;
            }
            *slot = val;
        }
        out
    }

    /// Validate the descriptor's geometry against the pass it claims to
    /// describe: `n` elements in rows of `cols` entries, every mask and
    /// the offset in range. Hostile bytes surface here as
    /// [`PlanError::Codec`] before any `1 << cols.len()` allocation.
    pub(crate) fn check_geometry(&self, name: &str, n: usize, cols: usize) -> Result<()> {
        let bad = |reason: String| PlanError::Codec { reason };
        if !n.is_power_of_two() || !cols.is_power_of_two() {
            return Err(bad(format!(
                "{name}: affine descriptor over non-power-of-two geometry {n}/{cols}"
            )));
        }
        if self.cols.len() != n.trailing_zeros() as usize {
            return Err(bad(format!(
                "{name}: {} masks, {n} elements need {}",
                self.cols.len(),
                n.trailing_zeros()
            )));
        }
        if self.col_bits != cols.trailing_zeros() {
            return Err(bad(format!(
                "{name}: col_bits {} does not match row length {cols}",
                self.col_bits
            )));
        }
        if self.offset as usize >= cols || self.cols.iter().any(|&m| m as usize >= cols) {
            return Err(bad(format!(
                "{name}: mask or offset out of range 0..{cols}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_and_reproduces_affine_maps() {
        // g[p] = 0b101 ^ fold of masks — 32 positions, rows of 8.
        let masks = [0b001u32, 0b110, 0b010, 0b100, 0b011];
        let map: Vec<u32> = (0..32usize)
            .map(|p| {
                let mut v = 0b101u32;
                for (b, &m) in masks.iter().enumerate() {
                    if p >> b & 1 == 1 {
                        v ^= m;
                    }
                }
                v
            })
            .collect();
        let step = AffineStep::fit(&map, 8).expect("affine map must fit");
        assert_eq!(step.offset(), 0b101);
        assert_eq!(step.masks(), &masks);
        assert_eq!(step.col_bits(), 3);
        assert_eq!(step.lo_masks(), &masks[..3]);
        assert!(step.matches_map(&map));
        assert_eq!(step.materialize(), map);
        for (p, &expect) in map.iter().enumerate() {
            assert_eq!(step.eval(p), expect);
            assert_eq!(
                step.row_base(p / 8) ^ step.eval(p & 7) ^ step.offset(),
                expect
            );
        }
        step.check_geometry("g", 32, 8).unwrap();
    }

    #[test]
    fn rejects_non_affine_maps() {
        // One flipped entry away from affine.
        let mut map: Vec<u32> = (0..16u32).map(|p| p ^ 3).collect();
        assert!(AffineStep::fit(&map, 16).is_some());
        map[9] ^= 1;
        assert!(AffineStep::fit(&map, 16).is_none());
        // Non-power-of-two geometry never fits.
        assert!(AffineStep::fit(&[0u32; 12], 4).is_none());
        assert!(AffineStep::fit(&(0..16u32).collect::<Vec<_>>(), 12).is_none());
        assert!(AffineStep::fit(&[], 4).is_none());
    }

    #[test]
    fn geometry_violations_are_typed_errors() {
        let id: Vec<u32> = (0..16).collect();
        let step = AffineStep::fit(&id, 16).unwrap();
        step.check_geometry("g", 16, 16).unwrap();
        assert!(step.check_geometry("g", 32, 16).is_err()); // wrong element count
        assert!(step.check_geometry("g", 16, 8).is_err()); // wrong row length
        assert!(step.check_geometry("g", 12, 16).is_err()); // not a power of two
        let oob = AffineStep::from_parts(2, vec![0, 1, 4, 0], 0);
        assert!(oob.check_geometry("g", 16, 4).is_err()); // mask ≥ row length
    }

    #[test]
    fn matches_map_rejects_out_of_range_descriptors() {
        // A descriptor whose masks exceed the row length cannot claim to
        // match any in-range map.
        let step = AffineStep::from_parts(2, vec![0, 1, 8, 0], 0);
        let map = step.materialize();
        assert!(!step.matches_map(&map));
        // And a length mismatch is a clean false, not a panic.
        let id = AffineStep::fit(&(0..16u32).collect::<Vec<_>>(), 16).unwrap();
        assert!(!id.matches_map(&[0, 1, 2]));
    }
}
