//! Versioned, std-only binary codec for [`PlanIr`].
//!
//! The container this reproduction ships in is offline — no serde, no
//! compression crates — so the wire format is a hand-rolled little-endian
//! layout, built to be boring and hostile-input-proof:
//!
//! ```text
//! magic      8 bytes  b"HMMPLAN\0"
//! version    u32      FORMAT_VERSION
//! width      u64      machine width the plan was built for
//! rows       u64      matrix rows
//! cols       u64      matrix cols
//! gamma      u64      γ_w(P) as f64 bits
//! fingerprint u64     Permutation::fingerprint() of the source
//! kind       u32      0 = full step maps, 1 = compact affine descriptors
//! kind 0:  section ×3 u64 entry count, then that many u32 entries
//!                     (step1, step2, step3 destination maps)
//! kind 1:  descriptor ×3 (gather order g1, g2, g3), each:
//!                     u32 col_bits, u32 offset, u64 mask count,
//!                     then that many u32 masks
//! checksum   u64      FNV-1a over every preceding byte
//! ```
//!
//! The gather maps are *not* serialised: they are per-row inverses of the
//! steps and are re-derived on decode, which keeps files smaller and means
//! a corrupt file cannot smuggle in gather entries inconsistent with its
//! steps. Structured plans go further: their gathers have a verified
//! closed form ([`crate::AffineStep`]), so the file stores the three
//! descriptors — O(log² n) bytes instead of 3 × O(n) maps — and the maps
//! are rebuilt on decode by the same Gray-style walk that verified the
//! fit. Version-1 files (always full maps, no `kind` field) still decode.
//! Decoding never panics: truncation, a flipped byte, an unknown version
//! or kind, inconsistent section lengths, out-of-range descriptors, or
//! non-permutation rows all surface as [`PlanError::Codec`].

use crate::affine::AffineStep;
use crate::error::{PlanError, Result};
use crate::ir::PlanIr;
use hmm_perm::MatrixShape;
use std::io::Write;

/// Current wire-format version. Bump on any layout change; decoders reject
/// versions they do not know (older versions this build still reads are
/// special-cased in [`decode`]).
pub const FORMAT_VERSION: u32 = 2;

/// Section kind: three full step-map sections follow the header.
const KIND_FULL: u32 = 0;
/// Section kind: three compact affine descriptors follow the header.
const KIND_COMPACT: u32 = 1;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"HMMPLAN\0";

/// FNV-1a offset basis — the initial state [`fnv1a_update`] folds bytes
/// into. Public alongside the helpers so incremental (streaming) hashers
/// outside this crate start from the standard seed.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the codec's integrity checksum (the same
/// hash family as the permutation fingerprint; collision-resistance
/// against *accidents*, which is all a checksum promises). Public so the
/// other wire formats in the workspace (the `hmm-server` TCP framing)
/// seal their frames with the same hash instead of growing a second one.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// One incremental FNV-1a step, so streaming writers can hash on the fly.
pub fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Serialised size in bytes of a **full** (kind 0) plan for `n` elements
/// (header + kind + three length-prefixed `n`-entry sections + checksum).
/// This is the size of every König-colored plan's file; structured plans
/// encode compact — see [`compact_encoded_len`].
pub fn encoded_len(n: usize) -> usize {
    8 + 4 + 5 * 8 + 4 + 3 * (8 + 4 * n) + 8
}

/// Serialised size in bytes of a **compact** (kind 1) plan for `n`
/// elements, `n` a power of two: header + kind + three descriptors of
/// log₂ n masks each + checksum. O(log n) where [`encoded_len`] is O(n) —
/// a 4M-element structured plan is ~376 bytes on disk instead of ~48 MiB.
pub fn compact_encoded_len(n: usize) -> usize {
    debug_assert!(n.is_power_of_two());
    let k = n.trailing_zeros() as usize;
    8 + 4 + 5 * 8 + 4 + 3 * (4 + 4 + 8 + 4 * k) + 8
}

/// The fixed header bytes (everything before the three sections), shared by
/// [`encode`] and [`encode_to`] so the two paths cannot drift.
fn header_bytes(ir: &PlanIr) -> [u8; 8 + 4 + 5 * 8] {
    let mut h = [0u8; 8 + 4 + 5 * 8];
    h[..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&(ir.width() as u64).to_le_bytes());
    h[20..28].copy_from_slice(&(ir.shape().rows as u64).to_le_bytes());
    h[28..36].copy_from_slice(&(ir.shape().cols as u64).to_le_bytes());
    h[36..44].copy_from_slice(&ir.gamma().to_bits().to_le_bytes());
    h[44..52].copy_from_slice(&ir.fingerprint().to_le_bytes());
    h
}

/// Serialise a u32 slice into a little-endian byte region in bulk. On the
/// wire this is exactly the old element-at-a-time loop, but one `resize` +
/// 4-byte `copy_from_slice`s vectorise where 12M `extend_from_slice` calls
/// did not — this loop was most of the `plan_store_build` > `plan_build`
/// inversion at 4M elements.
fn fill_le_u32(dst: &mut [u8], src: &[u32]) {
    debug_assert_eq!(dst.len(), 4 * src.len());
    for (d, &v) in dst.chunks_exact_mut(4).zip(src) {
        d.copy_from_slice(&v.to_le_bytes());
    }
}

/// The wire bytes of one affine descriptor (see the module layout).
fn descriptor_bytes(step: &AffineStep) -> Vec<u8> {
    let masks = step.masks();
    let mut out = Vec::with_capacity(16 + 4 * masks.len());
    out.extend_from_slice(&step.col_bits().to_le_bytes());
    out.extend_from_slice(&step.offset().to_le_bytes());
    out.extend_from_slice(&(masks.len() as u64).to_le_bytes());
    for &m in masks {
        out.extend_from_slice(&m.to_le_bytes());
    }
    out
}

/// Encode a plan into its on-disk byte representation. Plans carrying
/// verified affine descriptors ([`PlanIr::affine`]) encode compact (kind
/// 1, O(log² n) bytes); everything else encodes its full step maps.
pub fn encode(ir: &PlanIr) -> Vec<u8> {
    if let Some(affine) = ir.affine() {
        let mut out = Vec::with_capacity(compact_encoded_len(ir.len()));
        out.extend_from_slice(&header_bytes(ir));
        out.extend_from_slice(&KIND_COMPACT.to_le_bytes());
        for step in affine {
            out.extend_from_slice(&descriptor_bytes(step));
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        return out;
    }
    let mut out = Vec::with_capacity(encoded_len(ir.len()));
    out.extend_from_slice(&header_bytes(ir));
    out.extend_from_slice(&KIND_FULL.to_le_bytes());
    for section in [ir.step1(), ir.step2(), ir.step3()] {
        out.extend_from_slice(&(section.len() as u64).to_le_bytes());
        let start = out.len();
        out.resize(start + 4 * section.len(), 0);
        fill_le_u32(&mut out[start..], section);
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Stream a plan's encoding into `w`, producing exactly the bytes of
/// [`encode`] without materialising them: sections are converted through a
/// fixed 64 KiB buffer and the FNV-1a checksum is folded in on the fly.
/// This is what [`crate::store::PlanStore::save`] uses, so persisting a
/// 4M-element plan (~48 MiB on disk) costs one buffer, not a second copy
/// of the plan in memory.
pub fn encode_to<W: Write>(ir: &PlanIr, w: &mut W) -> std::io::Result<()> {
    const CHUNK: usize = 16 * 1024; // u32 entries per flush: 64 KiB
    let mut hash = FNV_OFFSET;
    let mut put = |w: &mut W, bytes: &[u8]| -> std::io::Result<()> {
        hash = fnv1a_update(hash, bytes);
        w.write_all(bytes)
    };
    put(w, &header_bytes(ir))?;
    if let Some(affine) = ir.affine() {
        // Compact form is a few hundred bytes — no chunking needed.
        put(w, &KIND_COMPACT.to_le_bytes())?;
        for step in affine {
            put(w, &descriptor_bytes(step))?;
        }
    } else {
        put(w, &KIND_FULL.to_le_bytes())?;
        let mut buf = vec![0u8; 4 * CHUNK.min(ir.len().max(1))];
        for section in [ir.step1(), ir.step2(), ir.step3()] {
            put(w, &(section.len() as u64).to_le_bytes())?;
            for chunk in section.chunks(CHUNK) {
                let bytes = &mut buf[..4 * chunk.len()];
                fill_le_u32(bytes, chunk);
                put(w, bytes)?;
            }
        }
    }
    let checksum = hash;
    w.write_all(&checksum.to_le_bytes())
}

/// A bounds-checked little-endian reader over the input bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(PlanError::Codec {
                reason: format!("truncated while reading {what}"),
            }),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn usize(&mut self, what: &str) -> Result<usize> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| PlanError::Codec {
            reason: format!("{what} value {v} exceeds this platform's usize"),
        })
    }
}

/// Error unless the cursor consumed its input exactly.
fn check_no_trailing(cur: &Cursor<'_>) -> Result<()> {
    if cur.pos != cur.bytes.len() {
        return Err(PlanError::Codec {
            reason: format!(
                "{} trailing bytes after the last section",
                cur.bytes.len() - cur.pos
            ),
        });
    }
    Ok(())
}

/// Decode a plan from bytes. Every malformed input — truncated, bit-flipped,
/// wrong magic or version, inconsistent sections — yields
/// [`PlanError::Codec`]; a successful decode is internally consistent (each
/// step row validated as a permutation) but is **not** proof the plan is
/// the one the caller wants: verify with [`PlanIr::matches`] before use.
pub fn decode(bytes: &[u8]) -> Result<PlanIr> {
    // Checksum first: it covers everything, so random corruption is caught
    // before any field is interpreted.
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(PlanError::Codec {
            reason: format!("{} bytes is too short for a plan file", bytes.len()),
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    let computed = fnv1a(body);
    if stored != computed {
        return Err(PlanError::Codec {
            reason: format!("checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"),
        });
    }
    let mut cur = Cursor {
        bytes: body,
        pos: 0,
    };
    let magic = cur.take(MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err(PlanError::Codec {
            reason: "bad magic: not a plan file".into(),
        });
    }
    let version = cur.u32("version")?;
    if version != FORMAT_VERSION && version != 1 {
        return Err(PlanError::Codec {
            reason: format!(
                "unknown format version {version} (this build reads 1..={FORMAT_VERSION})"
            ),
        });
    }
    let width = cur.usize("width")?;
    let rows = cur.usize("rows")?;
    let cols = cur.usize("cols")?;
    let gamma = f64::from_bits(cur.u64("gamma")?);
    let fingerprint = cur.u64("fingerprint")?;
    let n = rows.checked_mul(cols).ok_or_else(|| PlanError::Codec {
        reason: format!("shape {rows}×{cols} overflows"),
    })?;
    if rows == 0 || cols == 0 || width == 0 {
        return Err(PlanError::Codec {
            reason: format!("degenerate header: {rows}×{cols}, width {width}"),
        });
    }
    let shape = MatrixShape::new(rows, cols).map_err(|_| PlanError::Codec {
        reason: format!("invalid shape {rows}×{cols}"),
    })?;
    // Version-1 files predate the kind discriminator: sections follow the
    // header directly and are always full step maps.
    let kind = if version == 1 {
        KIND_FULL
    } else {
        cur.u32("section kind")?
    };
    let ir = match kind {
        KIND_FULL => {
            let mut sections: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            for (idx, section) in sections.iter_mut().enumerate() {
                let name = ["step1", "step2", "step3"][idx];
                let len = cur.usize(name)?;
                if len != n {
                    return Err(PlanError::Codec {
                        reason: format!("{name} declares {len} entries, shape needs {n}"),
                    });
                }
                let raw = cur.take(4 * len, name)?;
                section.reserve_exact(len);
                section.extend(
                    raw.chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
                );
            }
            check_no_trailing(&cur)?;
            let [step1, step2, step3] = sections;
            PlanIr::from_steps(shape, width, step1, step2, step3, gamma, fingerprint)?
        }
        KIND_COMPACT => {
            let mut steps = Vec::with_capacity(3);
            for name in ["affine1", "affine2", "affine3"] {
                let col_bits = cur.u32(name)?;
                let offset = cur.u32(name)?;
                let count = cur.usize(name)?;
                // Mask count is pinned to the header's shape before any
                // allocation, so a hostile count cannot balloon memory.
                if !n.is_power_of_two() || count != n.trailing_zeros() as usize {
                    return Err(PlanError::Codec {
                        reason: format!("{name} declares {count} masks, shape {n} needs log₂ n"),
                    });
                }
                let raw = cur.take(4 * count, name)?;
                let masks: Vec<u32> = raw
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                steps.push(AffineStep::from_parts(col_bits, masks, offset));
            }
            check_no_trailing(&cur)?;
            let affine: [AffineStep; 3] = steps.try_into().expect("three descriptors");
            PlanIr::from_affine(shape, width, affine, gamma, fingerprint)?
        }
        other => {
            return Err(PlanError::Codec {
                reason: format!("unknown section kind {other}"),
            })
        }
    };
    // Belt-and-braces: both construction paths have already validated
    // the step rows (and, for compact files, the descriptor geometry),
    // so this cannot fail on any byte stream — but decode is a front
    // door to the clamped gather kernels, and the full contract check is
    // what keeps "corrupt plan" a typed error rather than silently wrong
    // output if either invariant ever drifts.
    ir.validate()?;
    Ok(ir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;

    const W: usize = 8;

    fn sample(n: usize, seed: u64) -> PlanIr {
        PlanIr::build(&families::random(n, seed), W).unwrap()
    }

    /// The exact on-disk size a plan encodes to: compact for plans that
    /// carry descriptors, full otherwise.
    fn expected_len(ir: &PlanIr) -> usize {
        if ir.affine().is_some() {
            compact_encoded_len(ir.len())
        } else {
            encoded_len(ir.len())
        }
    }

    #[test]
    fn round_trips_bit_identically() {
        for fam in families::Family::ALL {
            let p = fam.build(1 << 10, 17).unwrap();
            let ir = PlanIr::build(&p, W).unwrap();
            let bytes = encode(&ir);
            assert_eq!(bytes.len(), expected_len(&ir), "{}", fam.name());
            let back = decode(&bytes).unwrap();
            assert_eq!(back, ir, "{}", fam.name());
            assert_eq!(encode(&back), bytes, "{}", fam.name());
            assert!(back.matches(&p));
        }
    }

    #[test]
    fn structured_plans_encode_compact_and_round_trip() {
        for n in [1usize << 10, 1 << 11] {
            let p = families::bit_reversal(n).unwrap();
            let ir = PlanIr::build(&p, W).unwrap();
            assert!(ir.affine().is_some());
            let bytes = encode(&ir);
            // O(log n) on the wire: orders of magnitude below the full form.
            assert_eq!(bytes.len(), compact_encoded_len(n));
            assert!(bytes.len() * 10 < encoded_len(n), "{} bytes", bytes.len());
            let back = decode(&bytes).unwrap();
            // Field-identical reconstruction: maps, descriptors, identity.
            assert_eq!(back, ir);
            assert!(back.affine().is_some());
            assert!(back.matches(&p));
            assert_eq!(encode(&back), bytes);
        }
    }

    #[test]
    fn streaming_encoder_matches_buffered_encoder_exactly() {
        // `encode_to` is the store's hot path; it must emit byte-for-byte
        // what `encode` emits (header, sections, and the on-the-fly
        // checksum), including at sizes that straddle its chunk boundary.
        for n in [64usize, 1 << 10, 1 << 15] {
            for fam in families::Family::ALL {
                let p = fam.build(n, 23).unwrap();
                let ir = PlanIr::build(&p, W).unwrap();
                let buffered = encode(&ir);
                let mut streamed = Vec::new();
                encode_to(&ir, &mut streamed).unwrap();
                assert_eq!(streamed, buffered, "{} n={n}", fam.name());
                assert_eq!(decode(&streamed).unwrap(), ir);
            }
        }
    }

    #[test]
    fn streaming_encoder_propagates_write_errors() {
        struct Failing(usize);
        impl std::io::Write for Failing {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 < buf.len() {
                    return Err(std::io::Error::other("disk full"));
                }
                self.0 -= buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let ir = sample(256, 9);
        // A writer that fails mid-section must surface the error, not panic.
        assert!(encode_to(&ir, &mut Failing(100)).is_err());
        assert!(encode_to(&ir, &mut Failing(usize::MAX)).is_ok());
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let ir = sample(256, 1);
        let bytes = encode(&ir);
        // Cutting the file anywhere must error, never panic.
        for cut in [0, 1, 7, 8, 11, 12, 40, 60, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(decode(&bytes[..cut]), Err(PlanError::Codec { .. })),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_caught() {
        let ir = sample(256, 2);
        let bytes = encode(&ir);
        // Flip one byte at a time across the whole file (header, sections,
        // checksum): the checksum (or, for checksum bytes, the mismatch
        // with the recomputed body hash) must catch each one.
        for pos in (0..bytes.len()).step_by(13) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            assert!(
                matches!(decode(&corrupt), Err(PlanError::Codec { .. })),
                "flip at {pos}"
            );
        }
    }

    #[test]
    fn bumped_version_is_rejected() {
        let ir = sample(256, 3);
        let mut bytes = encode(&ir);
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        // Re-seal so the version check, not the checksum, fires.
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let ir = sample(256, 4);
        let mut bytes = encode(&ir);
        bytes[0] = b'X';
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(PlanError::Codec { .. })));
    }

    #[test]
    fn resealed_section_corruption_fails_validation() {
        // Defense in depth: even if an attacker re-seals the checksum, a
        // section that is not a per-row permutation is rejected.
        let ir = sample(256, 5);
        let mut bytes = encode(&ir);
        let first_entry = 8 + 4 + 5 * 8 + 4 + 8;
        bytes[first_entry..first_entry + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(PlanError::Codec { .. })));
    }

    /// Rebuild a version-1 file (no `kind` field) from a version-2 full
    /// encoding: splice out the discriminator, stamp version 1, re-seal.
    fn as_v1_bytes(ir: &PlanIr) -> Vec<u8> {
        assert!(ir.affine().is_none(), "v1 only ever held full maps");
        let v2 = encode(ir);
        let kind_at = 8 + 4 + 5 * 8;
        let mut v1 = Vec::with_capacity(v2.len() - 4);
        v1.extend_from_slice(&v2[..kind_at]);
        v1.extend_from_slice(&v2[kind_at + 4..v2.len() - 8]);
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        let sum = fnv1a(&v1);
        v1.extend_from_slice(&sum.to_le_bytes());
        v1
    }

    #[test]
    fn version_1_files_still_decode() {
        // Forward-compat guard: plan files written before the descriptor
        // section existed must keep decoding bit-identically.
        for seed in [11u64, 12, 13] {
            let ir = sample(1 << 9, seed);
            let v1 = as_v1_bytes(&ir);
            assert_eq!(v1.len(), encoded_len(ir.len()) - 4);
            let back = decode(&v1).unwrap();
            assert_eq!(back, ir, "seed {seed}");
            // Re-encoding writes the current version, not v1.
            assert_eq!(&encode(&back)[8..12], &FORMAT_VERSION.to_le_bytes());
        }
    }

    #[test]
    fn unknown_section_kind_is_rejected() {
        let ir = sample(256, 6);
        let mut bytes = encode(&ir);
        let kind_at = 8 + 4 + 5 * 8;
        bytes[kind_at..kind_at + 4].copy_from_slice(&7u32.to_le_bytes());
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
    }

    #[test]
    fn compact_truncations_and_flips_are_clean_errors() {
        let ir = PlanIr::build(&families::shuffle(1 << 10).unwrap(), W).unwrap();
        let bytes = encode(&ir);
        assert_eq!(bytes.len(), compact_encoded_len(1 << 10));
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            assert!(decode(&corrupt).is_err(), "flip at {pos}");
        }
    }

    #[test]
    fn resealed_hostile_descriptors_are_rejected() {
        let ir = PlanIr::build(&families::shuffle(1 << 10).unwrap(), W).unwrap();
        let bytes = encode(&ir);
        let reseal = |mut b: Vec<u8>| {
            let body_len = b.len() - 8;
            let sum = fnv1a(&b[..body_len]);
            b[body_len..].copy_from_slice(&sum.to_le_bytes());
            b
        };
        let first_mask = 8 + 4 + 5 * 8 + 4 + 4 + 4 + 8;
        // An out-of-range mask fails descriptor geometry.
        let mut oob = bytes.clone();
        oob[first_mask..first_mask + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&reseal(oob)), Err(PlanError::Codec { .. })));
        // A mask-count that disagrees with the shape is caught before any
        // allocation sized from it.
        let count_at = 8 + 4 + 5 * 8 + 4 + 4 + 4;
        let mut huge = bytes.clone();
        huge[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode(&reseal(huge)),
            Err(PlanError::Codec { .. })
        ));
        // Degenerate masks (two equal low masks) materialize rows that
        // are not permutations — rejected, never gathered through.
        let mut degen = bytes.clone();
        let m0 = &degen[first_mask..first_mask + 4].to_vec();
        degen[first_mask + 4..first_mask + 8].copy_from_slice(m0);
        assert!(matches!(
            decode(&reseal(degen)),
            Err(PlanError::Codec { .. })
        ));
    }

    #[test]
    fn empty_and_garbage_inputs_error() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[0u8; 19]).is_err());
        let garbage: Vec<u8> = (0..4096u32)
            .map(|v| (v.wrapping_mul(2654435761)) as u8)
            .collect();
        assert!(decode(&garbage).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Any family at any schedulable power-of-two size (even and
            /// odd exponents: square and rectangular shapes) round-trips
            /// bit-identically through the codec.
            #[test]
            fn round_trip_across_families_and_shapes(
                f in 0usize..families::Family::ALL.len(),
                k in 6u32..=12,
                seed in any::<u64>(),
            ) {
                let n = 1usize << k;
                let p = families::Family::ALL[f].build(n, seed).unwrap();
                let ir = PlanIr::build(&p, W).unwrap();
                let bytes = encode(&ir);
                prop_assert_eq!(bytes.len(), expected_len(&ir));
                let back = decode(&bytes).unwrap();
                prop_assert_eq!(&back, &ir);
                prop_assert_eq!(encode(&back), bytes);
                prop_assert!(back.matches(&p));
            }

            /// Random members of the affine group — arbitrary invertible
            /// bit matrices, not just the named families — round-trip
            /// through the compact descriptor section field-identically.
            #[test]
            fn compact_descriptor_round_trip(
                k in 6u32..=12,
                seed in any::<u64>(),
            ) {
                let n = 1usize << k;
                let p = families::random_bmmc(n, seed).unwrap();
                let ir = PlanIr::build(&p, W).unwrap();
                prop_assert!(ir.affine().is_some());
                let bytes = encode(&ir);
                prop_assert_eq!(bytes.len(), compact_encoded_len(n));
                let back = decode(&bytes).unwrap();
                prop_assert_eq!(&back, &ir);
                prop_assert_eq!(encode(&back), bytes);
                prop_assert!(back.matches(&p));
            }

            /// Any single-byte corruption anywhere in the file — header,
            /// sections, or the checksum trailer itself — is a clean
            /// decode error, never a panic and never a wrong plan.
            #[test]
            fn any_byte_flip_is_rejected(
                seed in any::<u64>(),
                pos_frac in 0.0f64..1.0,
                mask in 1u8..=255,
            ) {
                let ir = sample(256, seed);
                let mut bytes = encode(&ir);
                let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
                bytes[pos] ^= mask;
                prop_assert!(decode(&bytes).is_err(), "flip {mask:#x} at {pos}");
            }
        }
    }
}
