//! Persistent, versioned plan store: the cross-process tier of the plan
//! cache.
//!
//! One directory, one file per plan, named by the cache identity
//! `(fingerprint, n, width)` — the same key the in-memory engine shards
//! by — so a cold process can skip the König build for any permutation a
//! previous process already planned. The store is deliberately paranoid
//! at the trust boundary:
//!
//! * **loads never trust the file name** — the decoded header's
//!   fingerprint/shape/width must agree with the requested key, or the
//!   load reports a mismatch;
//! * **saves are atomic** — encode to a temp file in the same directory,
//!   then rename over the target, so a crashed writer can never leave a
//!   half-written plan where a reader will find it;
//! * a corrupt, truncated, or colliding file is an *error to report and a
//!   file to discard*, never a panic: callers (the engine) count it and
//!   rebuild from scratch.
//!
//! Structured plans persist in **compact descriptor form** (the codec's
//! kind-1 section): a few hundred bytes per plan instead of 3 × O(n)
//! maps, with the maps rebuilt on load by the verified Gray-style walk.
//! A store mixing structured and König plans therefore mixes ~300-byte
//! and ~12n-byte files; [`PlanStore::prune`] sizes both from disk.

use crate::codec;
use crate::error::{PlanError, Result};
use crate::ir::PlanIr;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// The identity a plan is filed under: permutation fingerprint, element
/// count, and machine width (the same triple the in-memory cache keys by).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// `Permutation::fingerprint()` of the permutation.
    pub fingerprint: u64,
    /// Number of elements.
    pub n: usize,
    /// Machine width the plan was built for.
    pub width: usize,
}

impl StoreKey {
    /// The key a given plan files under.
    pub fn of(ir: &PlanIr) -> Self {
        StoreKey {
            fingerprint: ir.fingerprint(),
            n: ir.len(),
            width: ir.width(),
        }
    }
}

/// One entry of a store listing: its key and on-disk size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEntry {
    /// The plan's identity.
    pub key: StoreKey,
    /// File size in bytes.
    pub bytes: u64,
}

/// A directory of encoded plans, keyed by [`StoreKey`].
#[derive(Debug, Clone)]
pub struct PlanStore {
    dir: PathBuf,
}

/// File extension for plan files.
const EXT: &str = "hmmplan";

fn store_err(path: &Path, e: std::io::Error) -> PlanError {
    PlanError::Store {
        path: path.display().to_string(),
        reason: e.to_string(),
    }
}

/// Temp files older than this at open time are considered orphaned by a
/// crashed writer and swept — generous enough that no live writer (a
/// save streams one encode, seconds at worst) can be raced.
const STALE_TMP_GRACE: Duration = Duration::from_secs(15 * 60);

impl PlanStore {
    /// Open (creating if needed) a plan store rooted at `dir`, sweeping
    /// any temp files orphaned by a writer that crashed between
    /// temp-write and rename (best-effort: sweep failures never fail the
    /// open).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| store_err(&dir, e))?;
        let store = PlanStore { dir };
        let _ = store.sweep_stale_tmps(STALE_TMP_GRACE);
        Ok(store)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a key maps to.
    pub fn path_for(&self, key: &StoreKey) -> PathBuf {
        self.dir.join(format!(
            "plan-{:016x}-n{}-w{}.{EXT}",
            key.fingerprint, key.n, key.width
        ))
    }

    /// Persist a plan atomically (temp file + rename). Returns the final
    /// path. An existing plan under the same key is replaced.
    pub fn save(&self, ir: &PlanIr) -> Result<PathBuf> {
        let key = StoreKey::of(ir);
        let path = self.path_for(&key);
        let tmp = self.dir.join(format!(
            ".tmp-{:016x}-n{}-w{}-{}.{EXT}",
            key.fingerprint,
            key.n,
            key.width,
            std::process::id()
        ));
        // Stream the encoding straight to disk (`codec::encode_to`): the
        // old `fs::write(codec::encode(ir))` materialised a second ~48 MiB
        // copy of a 4M-element plan and was the bulk of the
        // `plan_store_build` > `plan_build` inversion in BENCH_native.
        let write = |tmp: &Path| -> std::io::Result<()> {
            let file = fs::File::create(tmp)?;
            let mut w = std::io::BufWriter::new(file);
            codec::encode_to(ir, &mut w)?;
            use std::io::Write;
            w.flush()
        };
        write(&tmp).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            store_err(&tmp, e)
        })?;
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            store_err(&path, e)
        })?;
        Ok(path)
    }

    /// Load the plan filed under `key`. Returns `Ok(None)` when no file
    /// exists; `Err(PlanError::Codec)` when a file exists but is corrupt,
    /// truncated, wrong-version, or its decoded identity disagrees with
    /// `key` (a renamed or colliding file). A decoded plan is internally
    /// consistent but still **must** be verified against the requested
    /// permutation with [`PlanIr::matches`] before it is trusted.
    pub fn load(&self, key: &StoreKey) -> Result<Option<PlanIr>> {
        let path = self.path_for(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(store_err(&path, e)),
        };
        let ir = codec::decode(&bytes)?;
        // Decode has already re-derived and checked the plan's internals;
        // validate here as well so the store's contract ("a loaded plan
        // never reaches the clamped gathers malformed") does not depend
        // on the codec's.
        ir.validate()?;
        let found = StoreKey::of(&ir);
        if found != *key {
            return Err(PlanError::Codec {
                reason: format!(
                    "plan identity mismatch: file holds (fp {:#018x}, n {}, w {}), \
                     requested (fp {:#018x}, n {}, w {})",
                    found.fingerprint, found.n, found.width, key.fingerprint, key.n, key.width
                ),
            });
        }
        Ok(Some(ir))
    }

    /// Remove the plan filed under `key`, if present. Returns whether a
    /// file was deleted.
    pub fn remove(&self, key: &StoreKey) -> Result<bool> {
        let path = self.path_for(key);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(store_err(&path, e)),
        }
    }

    /// List every plan file in the store (keys parsed from file names;
    /// non-plan files are ignored).
    pub fn entries(&self) -> Result<Vec<StoreEntry>> {
        let mut out = Vec::new();
        let iter = fs::read_dir(&self.dir).map_err(|e| store_err(&self.dir, e))?;
        for entry in iter {
            let entry = entry.map_err(|e| store_err(&self.dir, e))?;
            let name = entry.file_name();
            let Some(key) = parse_file_name(&name.to_string_lossy()) else {
                continue;
            };
            let meta = entry.metadata().map_err(|e| store_err(&entry.path(), e))?;
            out.push(StoreEntry {
                key,
                bytes: meta.len(),
            });
        }
        out.sort_by_key(|e| (e.key.n, e.key.width, e.key.fingerprint));
        Ok(out)
    }

    /// Delete temp files last modified more than `grace` ago. A process
    /// killed between temp-write and rename leaks its `.tmp-*` file
    /// forever; anything older than the grace period cannot belong to a
    /// live writer (saves stream one encode and rename immediately).
    /// Called by [`PlanStore::open`] with a conservative default; exposed
    /// for explicit housekeeping. Returns how many files were removed.
    pub fn sweep_stale_tmps(&self, grace: Duration) -> Result<usize> {
        let now = SystemTime::now();
        let mut removed = 0usize;
        let iter = fs::read_dir(&self.dir).map_err(|e| store_err(&self.dir, e))?;
        for entry in iter {
            let entry = entry.map_err(|e| store_err(&self.dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.starts_with(".tmp-") || !name.ends_with(&format!(".{EXT}")) {
                continue;
            }
            let path = entry.path();
            let Ok(meta) = entry.metadata() else { continue };
            let Ok(mtime) = meta.modified() else { continue };
            let age = now.duration_since(mtime).unwrap_or(Duration::ZERO);
            if age >= grace && fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Cap the store at `max_bytes` of plan files by deleting the
    /// oldest-modified plans first (file-name tiebreak, so the order is
    /// deterministic under equal timestamps) until the remainder fits.
    /// Unparseable files are ignored, and a file that vanishes mid-prune
    /// (a concurrent prune or remove) is not an error. Returns how many
    /// plans were deleted.
    pub fn prune(&self, max_bytes: u64) -> Result<usize> {
        // (mtime, name, size, path) for every plan file.
        let mut files: Vec<(SystemTime, String, u64, PathBuf)> = Vec::new();
        let mut total: u64 = 0;
        let iter = fs::read_dir(&self.dir).map_err(|e| store_err(&self.dir, e))?;
        for entry in iter {
            let entry = entry.map_err(|e| store_err(&self.dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if parse_file_name(&name).is_none() {
                continue;
            }
            let meta = entry.metadata().map_err(|e| store_err(&entry.path(), e))?;
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            total += meta.len();
            files.push((mtime, name, meta.len(), entry.path()));
        }
        files.sort();
        let mut removed = 0usize;
        for (_, _, bytes, path) in files {
            if total <= max_bytes {
                break;
            }
            match fs::remove_file(&path) {
                Ok(()) => {
                    total -= bytes;
                    removed += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => total -= bytes,
                Err(e) => return Err(store_err(&path, e)),
            }
        }
        Ok(removed)
    }
}

/// Parse `plan-{fp:016x}-n{n}-w{w}.hmmplan` back into a key.
fn parse_file_name(name: &str) -> Option<StoreKey> {
    let rest = name
        .strip_prefix("plan-")?
        .strip_suffix(&format!(".{EXT}"))?;
    let mut parts = rest.split('-');
    let fingerprint = u64::from_str_radix(parts.next()?, 16).ok()?;
    let n = parts.next()?.strip_prefix('n')?.parse().ok()?;
    let width = parts.next()?.strip_prefix('w')?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some(StoreKey {
        fingerprint,
        n,
        width,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;
    use hmm_perm::Permutation;

    const W: usize = 8;

    fn tmp_store(tag: &str) -> PlanStore {
        let dir =
            std::env::temp_dir().join(format!("hmm-plan-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        PlanStore::open(dir).unwrap()
    }

    #[test]
    fn save_load_round_trip_and_listing() {
        let store = tmp_store("roundtrip");
        let p = families::random(1 << 10, 7);
        let ir = PlanIr::build(&p, W).unwrap();
        let path = store.save(&ir).unwrap();
        assert!(path.exists());
        let key = StoreKey::of(&ir);
        let loaded = store.load(&key).unwrap().expect("plan present");
        assert_eq!(loaded, ir);
        assert!(loaded.matches(&p));
        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key, key);
        assert_eq!(entries[0].bytes, codec::encoded_len(ir.len()) as u64);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn structured_plans_persist_descriptor_sized() {
        // The tentpole storage win: a structured plan's file carries the
        // three affine descriptors, not the three O(n) maps — and loads
        // back field-identical, descriptors included.
        let store = tmp_store("compact");
        let n = 1 << 12;
        let p = families::bit_reversal(n).unwrap();
        let ir = PlanIr::build(&p, W).unwrap();
        assert!(ir.affine().is_some());
        store.save(&ir).unwrap();
        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].bytes, codec::compact_encoded_len(n) as u64);
        assert!(entries[0].bytes < 1024, "{} bytes", entries[0].bytes);
        let loaded = store.load(&StoreKey::of(&ir)).unwrap().expect("present");
        assert_eq!(loaded, ir);
        assert!(loaded.affine().is_some());
        assert!(loaded.matches(&p));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_plan_is_none_and_remove_reports() {
        let store = tmp_store("missing");
        let key = StoreKey {
            fingerprint: 42,
            n: 1024,
            width: W,
        };
        assert_eq!(store.load(&key).unwrap(), None);
        assert!(!store.remove(&key).unwrap());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_file_is_a_codec_error_then_removable() {
        let store = tmp_store("corrupt");
        let ir = PlanIr::build(&families::random(256, 9), W).unwrap();
        let key = StoreKey::of(&ir);
        store.save(&ir).unwrap();
        // Truncate the file behind the store's back.
        let path = store.path_for(&key);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(store.load(&key), Err(PlanError::Codec { .. })));
        assert!(store.remove(&key).unwrap());
        assert_eq!(store.load(&key).unwrap(), None);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn renamed_file_fails_the_identity_check() {
        let store = tmp_store("renamed");
        let ir = PlanIr::build(&families::random(256, 11), W).unwrap();
        store.save(&ir).unwrap();
        // File a valid plan under a *different* key, as if an attacker (or
        // a fingerprint collision) renamed it.
        let victim = StoreKey {
            fingerprint: ir.fingerprint() ^ 1,
            ..StoreKey::of(&ir)
        };
        fs::rename(store.path_for(&StoreKey::of(&ir)), store.path_for(&victim)).unwrap();
        assert!(matches!(store.load(&victim), Err(PlanError::Codec { .. })));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn save_replaces_under_the_same_key() {
        // Two different permutations forced under one key cannot happen
        // through `save` (the key is derived from the plan), but saving
        // the same plan twice must be idempotent.
        let store = tmp_store("replace");
        let ir = PlanIr::build(&families::random(256, 13), W).unwrap();
        store.save(&ir).unwrap();
        store.save(&ir).unwrap();
        assert_eq!(store.entries().unwrap().len(), 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn file_name_parsing_round_trips() {
        let store = tmp_store("names");
        let key = StoreKey {
            fingerprint: 0xdead_beef_0123_4567,
            n: 65536,
            width: 32,
        };
        let path = store.path_for(&key);
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert_eq!(parse_file_name(&name), Some(key));
        assert_eq!(parse_file_name("not-a-plan.txt"), None);
        assert_eq!(parse_file_name("plan-zz-n4-w2.hmmplan"), None);
        let _ = fs::remove_dir_all(store.dir());
    }

    fn backdate(path: &Path, secs_ago: u64) {
        let when = SystemTime::now() - Duration::from_secs(secs_ago);
        let times = fs::FileTimes::new().set_accessed(when).set_modified(when);
        fs::File::options()
            .write(true)
            .open(path)
            .unwrap()
            .set_times(times)
            .unwrap();
    }

    #[test]
    fn prune_evicts_oldest_first_until_under_budget() {
        let store = tmp_store("prune");
        let plans: Vec<PlanIr> = (0..4)
            .map(|s| PlanIr::build(&families::random(256, 100 + s), W).unwrap())
            .collect();
        let per_plan = codec::encoded_len(256) as u64;
        for (age, ir) in plans.iter().enumerate() {
            let path = store.save(ir).unwrap();
            // plans[0] oldest, plans[3] newest.
            backdate(&path, 1000 * (4 - age as u64));
        }
        // Budget for two plans: the two oldest go.
        let removed = store.prune(2 * per_plan).unwrap();
        assert_eq!(removed, 2);
        assert!(store.load(&StoreKey::of(&plans[0])).unwrap().is_none());
        assert!(store.load(&StoreKey::of(&plans[1])).unwrap().is_none());
        assert!(store.load(&StoreKey::of(&plans[2])).unwrap().is_some());
        assert!(store.load(&StoreKey::of(&plans[3])).unwrap().is_some());
        // Already under budget: nothing to do.
        assert_eq!(store.prune(2 * per_plan).unwrap(), 0);
        // Zero budget empties the store.
        assert_eq!(store.prune(0).unwrap(), 2);
        assert!(store.entries().unwrap().is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn prune_ignores_foreign_files() {
        let store = tmp_store("prune-foreign");
        fs::write(store.dir().join("notes.txt"), b"keep me").unwrap();
        assert_eq!(store.prune(0).unwrap(), 0);
        assert!(store.dir().join("notes.txt").exists());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn stale_tmps_swept_fresh_ones_kept() {
        let store = tmp_store("tmpsweep");
        let stale = store.dir().join(".tmp-deadbeef-n256-w8-999.hmmplan");
        let fresh = store.dir().join(".tmp-cafef00d-n256-w8-998.hmmplan");
        let foreign = store.dir().join("unrelated.tmp");
        for p in [&stale, &fresh, &foreign] {
            fs::write(p, b"half-written").unwrap();
        }
        backdate(&stale, 3600);
        assert_eq!(store.sweep_stale_tmps(Duration::from_secs(900)).unwrap(), 1);
        assert!(!stale.exists());
        assert!(fresh.exists(), "live writer's tmp must survive");
        assert!(foreign.exists(), "non-store files are not touched");
        // Re-opening the same directory sweeps with the default grace.
        backdate(&fresh, 3600);
        let reopened = PlanStore::open(store.dir()).unwrap();
        assert!(!fresh.exists(), "open-time sweep collects stale tmps");
        let _ = fs::remove_dir_all(reopened.dir());
    }

    #[test]
    fn identity_permutation_plans_store_fine() {
        let store = tmp_store("ident");
        let p = Permutation::identity(1 << 10);
        let ir = PlanIr::build(&p, W).unwrap();
        store.save(&ir).unwrap();
        let loaded = store.load(&StoreKey::of(&ir)).unwrap().unwrap();
        assert!(loaded.matches(&p));
        let _ = fs::remove_dir_all(store.dir());
    }
}
