//! Error type for the plan layer.

use core::fmt;
use hmm_graph::GraphError;
use hmm_perm::PermError;

/// Errors raised while building, encoding, decoding, or storing plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A permutation was malformed or incompatible.
    Perm(PermError),
    /// Schedule construction failed in the graph substrate.
    Graph(GraphError),
    /// The input size is unsupported (the scheduled decomposition needs
    /// `n = r·c` with both factors multiples of `w`).
    UnsupportedSize {
        /// The offending size.
        n: usize,
        /// Why it is unsupported.
        reason: &'static str,
    },
    /// Sizes of two inputs disagree (e.g. permutation vs shape length).
    SizeMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        got: usize,
    },
    /// A serialized plan failed to decode: truncated, checksum mismatch,
    /// unknown version, or internally inconsistent sections. Decoding never
    /// panics on hostile bytes — every malformed input lands here.
    Codec {
        /// What the decoder objected to.
        reason: String,
    },
    /// A plan-store filesystem operation failed.
    Store {
        /// The path involved.
        path: String,
        /// The underlying I/O failure, rendered.
        reason: String,
    },
    /// A plan violates its internal contract (step rows or gather maps
    /// are not the permutations they must be) — raised by
    /// [`PlanIr::validate`](crate::PlanIr::validate) before a corrupted
    /// plan can reach the clamped gather kernels and mis-route data
    /// silently.
    Invalid {
        /// Which invariant failed.
        reason: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Perm(e) => write!(f, "permutation error: {e}"),
            PlanError::Graph(e) => write!(f, "graph error: {e}"),
            PlanError::UnsupportedSize { n, reason } => {
                write!(f, "unsupported size {n}: {reason}")
            }
            PlanError::SizeMismatch { expected, got } => {
                write!(f, "size mismatch: expected {expected}, got {got}")
            }
            PlanError::Codec { reason } => write!(f, "plan codec error: {reason}"),
            PlanError::Store { path, reason } => {
                write!(f, "plan store error at {path}: {reason}")
            }
            PlanError::Invalid { reason } => {
                write!(f, "plan violates its contract: {reason}")
            }
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Perm(e) => Some(e),
            PlanError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PermError> for PlanError {
    fn from(e: PermError) -> Self {
        PlanError::Perm(e)
    }
}

impl From<GraphError> for PlanError {
    fn from(e: GraphError) -> Self {
        PlanError::Graph(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PlanError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e: PlanError = PermError::NotPowerOfTwo { n: 3 }.into();
        assert!(e.to_string().contains("permutation"));
        assert!(std::error::Error::source(&e).is_some());
        let e = PlanError::Codec {
            reason: "truncated".into(),
        };
        assert!(e.to_string().contains("truncated"));
        assert!(std::error::Error::source(&e).is_none());
        let e = PlanError::Store {
            path: "/tmp/x".into(),
            reason: "denied".into(),
        };
        assert!(e.to_string().contains("/tmp/x"));
    }
}
