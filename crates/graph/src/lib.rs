//! # hmm-graph — regular bipartite multigraph edge coloring
//!
//! The scheduled offline permutation algorithm of Kasagi–Nakano–Ito reduces
//! schedule construction to **minimal edge coloring of regular bipartite
//! multigraphs** (their Theorem 6 cites König's theorem: a `Δ`-regular
//! bipartite graph is `Δ`-edge-colorable). This crate supplies that
//! substrate:
//!
//! * [`RegularBipartite`] — validated regular bipartite multigraphs with
//!   edge identities (parallel edges matter: one edge per data element);
//! * [`euler::euler_split`] — Euler-partition degree halving;
//! * [`matching::hopcroft_karp`] — maximum matching for odd-degree peeling;
//! * [`edge_color`] — the hybrid `Δ`-coloring, plus a matching-only
//!   baseline strategy for the ablation bench, and [`verify_coloring`];
//! * [`edge_color_par`] — the same coloring fanned out over scoped
//!   threads ([`exec::Parallelism`]), byte-identical at any thread count.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coloring;
pub mod error;
pub mod euler;
pub mod exec;
pub mod matching;
pub mod multigraph;

pub use coloring::{
    edge_color, edge_color_par, edge_color_with, verify_coloring, EdgeColoring, Strategy,
};
pub use error::{GraphError, Result};
pub use exec::Parallelism;
pub use matching::{hopcroft_karp, Matching};
pub use multigraph::RegularBipartite;
