//! Regular bipartite multigraphs.
//!
//! The scheduled permutation algorithm derives its conflict-free schedules
//! from bipartite graphs in which **parallel edges are common**: an edge is
//! drawn for every element to be moved, and many elements can share the same
//! (source bank, destination bank) pair. Edges therefore carry identities
//! (their index in the edge list), and colorings are reported per edge id.

use crate::error::{GraphError, Result};

/// A bipartite multigraph with `nodes` vertices on each side in which every
/// vertex (on both sides) has the same degree.
///
/// König's theorem (Theorem 6 in the paper) guarantees such a graph is
/// `degree`-edge-colorable; [`crate::coloring::edge_color`] produces the
/// coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegularBipartite {
    nodes: usize,
    degree: usize,
    /// `edges[e] = (left, right)`.
    edges: Vec<(usize, usize)>,
}

impl RegularBipartite {
    /// Build and validate: every endpoint in range and every vertex of both
    /// sides with equal degree.
    pub fn new(nodes: usize, edges: Vec<(usize, usize)>) -> Result<Self> {
        if nodes == 0 {
            return Err(GraphError::DegenerateGraph {
                nodes,
                edges: edges.len(),
            });
        }
        if edges.is_empty() || !edges.len().is_multiple_of(nodes) {
            return Err(GraphError::DegenerateGraph {
                nodes,
                edges: edges.len(),
            });
        }
        let degree = edges.len() / nodes;
        let mut left_deg = vec![0usize; nodes];
        let mut right_deg = vec![0usize; nodes];
        for &(u, v) in &edges {
            if u >= nodes {
                return Err(GraphError::NodeOutOfRange { node: u, nodes });
            }
            if v >= nodes {
                return Err(GraphError::NodeOutOfRange { node: v, nodes });
            }
            left_deg[u] += 1;
            right_deg[v] += 1;
        }
        for (node, &d) in left_deg.iter().enumerate() {
            if d != degree {
                return Err(GraphError::NotRegular {
                    node,
                    degree: d,
                    expected: degree,
                });
            }
        }
        for (node, &d) in right_deg.iter().enumerate() {
            if d != degree {
                return Err(GraphError::NotRegular {
                    node,
                    degree: d,
                    expected: degree,
                });
            }
        }
        Ok(RegularBipartite {
            nodes,
            degree,
            edges,
        })
    }

    /// Vertices per side.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Common degree of every vertex.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// All edges as `(left, right)` pairs, indexed by edge id.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of edges (`nodes * degree`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_regular_multigraph_with_parallel_edges() {
        // 2 nodes per side, degree 2, with a doubled edge.
        let g = RegularBipartite::new(2, vec![(0, 0), (0, 0), (1, 1), (1, 1)]).unwrap();
        assert_eq!(g.nodes(), 2);
        assert_eq!(g.degree(), 2);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn rejects_irregular() {
        // Left degrees 2 and 0.
        let err = RegularBipartite::new(2, vec![(0, 0), (0, 1)]).unwrap_err();
        assert!(matches!(err, GraphError::NotRegular { .. }));
        // Left regular, right irregular.
        let err = RegularBipartite::new(2, vec![(0, 0), (1, 0)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::NotRegular {
                node: 0,
                degree: 2,
                ..
            }
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = RegularBipartite::new(2, vec![(0, 2), (1, 0)]).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { node: 2, nodes: 2 });
    }

    #[test]
    fn rejects_degenerate() {
        assert!(RegularBipartite::new(0, vec![]).is_err());
        assert!(RegularBipartite::new(2, vec![]).is_err());
        assert!(RegularBipartite::new(2, vec![(0, 0)]).is_err());
    }

    #[test]
    fn permutation_graph_is_degree_one() {
        // A permutation induces a perfect matching: degree 1.
        let g = RegularBipartite::new(3, vec![(0, 2), (1, 0), (2, 1)]).unwrap();
        assert_eq!(g.degree(), 1);
    }
}
