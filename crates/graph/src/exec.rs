//! Structured fork/join parallelism for the plan compiler.
//!
//! `hmm-graph` (and `hmm-plan`, which reuses this module) must stay
//! simulator-independent, so instead of depending on the `hmm-native`
//! worker pool the compiler parallelises with **scoped threads** from
//! `std`: every construct here is a fork/join over disjoint `&mut`
//! slices, so the borrow checker proves data-race freedom and the crate's
//! `#![forbid(unsafe_code)]` stays in force.
//!
//! [`Parallelism`] is an explicit thread *budget* threaded through the
//! recursion. A budget of 1 is exactly the sequential algorithm — no
//! thread is ever spawned — and a budget of `t` keeps at most `t` tasks
//! in flight at any instant. Crucially the budget only chooses *where*
//! work runs, never *what* is computed: every split point partitions the
//! data identically at any budget, which is how the compiler guarantees
//! byte-identical output for any thread count.

/// An explicit fork/join thread budget. Copyable; splitting it divides
/// the budget between the two sides of a fork.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// The sequential budget: never spawns a thread.
    pub fn sequential() -> Self {
        Parallelism { threads: 1 }
    }

    /// A budget of `n` threads (clamped to at least 1).
    pub fn threads(n: usize) -> Self {
        Parallelism { threads: n.max(1) }
    }

    /// How many tasks this budget may keep in flight.
    pub fn available(self) -> usize {
        self.threads
    }

    /// True iff a fork under this budget would actually use a second thread.
    pub fn is_parallel(self) -> bool {
        self.threads > 1
    }

    /// Divide the budget for an even two-way fork: `(ceil, floor)`.
    pub fn split(self) -> (Self, Self) {
        self.split_weighted(1, 1)
    }

    /// Divide the budget for a two-way fork whose sides carry `wa` and
    /// `wb` units of work; each side gets at least one thread.
    pub fn split_weighted(self, wa: usize, wb: usize) -> (Self, Self) {
        let t = self.threads;
        if t <= 1 {
            return (Parallelism::sequential(), Parallelism::sequential());
        }
        let w = wa.max(1) + wb.max(1);
        let ta = (t * wa.max(1) / w).clamp(1, t - 1);
        (Parallelism::threads(ta), Parallelism::threads(t - ta))
    }

    /// Run `a` and `b`, on two scoped threads when the budget allows,
    /// splitting the budget evenly between them. With a sequential budget
    /// this is exactly `(a(seq), b(seq))` on the current thread.
    pub fn join<RA, RB, FA, FB>(self, a: FA, b: FB) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
        FA: FnOnce(Parallelism) -> RA + Send,
        FB: FnOnce(Parallelism) -> RB + Send,
    {
        self.join_weighted(1, 1, a, b)
    }

    /// [`join`](Self::join) with a work-proportional budget split.
    pub fn join_weighted<RA, RB, FA, FB>(self, wa: usize, wb: usize, a: FA, b: FB) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
        FA: FnOnce(Parallelism) -> RA + Send,
        FB: FnOnce(Parallelism) -> RB + Send,
    {
        if !self.is_parallel() {
            let ra = a(Parallelism::sequential());
            let rb = b(Parallelism::sequential());
            return (ra, rb);
        }
        let (pa, pb) = self.split_weighted(wa, wb);
        std::thread::scope(|s| {
            let ha = s.spawn(move || a(pa));
            let rb = b(pb);
            let ra = ha
                .join()
                .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
            (ra, rb)
        })
    }

    /// Mutate `data` in parallel as contiguous runs of whole rows of
    /// `row_len` elements: `f(first_row, rows)` is called once per chunk,
    /// on up to `available()` scoped threads. `data.len()` must be a
    /// multiple of `row_len`. Chunk boundaries depend only on the budget,
    /// and chunks are disjoint, so any per-element result is identical to
    /// the sequential `f(0, data)`.
    pub fn run_rows<T, F>(self, data: &mut [T], row_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(row_len > 0, "row_len must be positive");
        assert_eq!(data.len() % row_len, 0, "data must be whole rows");
        if data.is_empty() {
            return;
        }
        let rows = data.len() / row_len;
        let t = self.threads.min(rows);
        if t <= 1 {
            f(0, data);
            return;
        }
        let rows_per = rows.div_ceil(t);
        let per = rows_per * row_len;
        std::thread::scope(|s| {
            let f = &f;
            let mut rest = data;
            let mut row = 0usize;
            while rest.len() > per {
                let (head, tail) = std::mem::take(&mut rest).split_at_mut(per);
                rest = tail;
                let first = row;
                s.spawn(move || f(first, head));
                row += rows_per;
            }
            f(row, rest);
        });
    }

    /// Map disjoint index ranges covering `0..n` on up to `available()`
    /// scoped threads, returning the per-range results **in range order**
    /// (so order-sensitive reductions stay deterministic). Ranges are
    /// never smaller than `min_chunk` except possibly the last.
    pub fn map_ranges<R, F>(self, n: usize, min_chunk: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let max_chunks = n.div_ceil(min_chunk.max(1));
        let t = self.threads.min(max_chunks);
        if t <= 1 {
            return vec![f(0, n)];
        }
        let per = n.div_ceil(t);
        std::thread::scope(|s| {
            let f = &f;
            let mut handles = Vec::with_capacity(t);
            let mut start = 0usize;
            while start + per < n {
                let end = start + per;
                handles.push(s.spawn(move || f(start, end)));
                start = end;
            }
            let last = f(start, n);
            let mut out: Vec<R> = handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                })
                .collect();
            out.push(last);
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_budget_never_splits() {
        let p = Parallelism::sequential();
        assert!(!p.is_parallel());
        assert_eq!(p.available(), 1);
        let (a, b) = p.split();
        assert_eq!((a.available(), b.available()), (1, 1));
    }

    #[test]
    fn budget_is_conserved_across_splits() {
        for t in 2..=16 {
            let (a, b) = Parallelism::threads(t).split();
            assert_eq!(a.available() + b.available(), t);
            let (a, b) = Parallelism::threads(t).split_weighted(3, 1);
            assert_eq!(a.available() + b.available(), t);
            assert!(a.available() >= 1 && b.available() >= 1);
        }
    }

    #[test]
    fn weighted_split_tracks_work() {
        let (a, b) = Parallelism::threads(8).split_weighted(3, 1);
        assert!(a.available() >= b.available());
        let (a, b) = Parallelism::threads(8).split_weighted(1, 7);
        assert!(b.available() > a.available());
    }

    #[test]
    fn join_runs_both_closures() {
        for t in [1, 2, 4] {
            let (a, b) = Parallelism::threads(t).join(|_| 40, |_| 2);
            assert_eq!(a + b, 42);
        }
    }

    #[test]
    fn join_passes_split_budgets() {
        let (a, b) = Parallelism::threads(4).join(|p| p.available(), |p| p.available());
        assert_eq!(a + b, 4);
    }

    #[test]
    fn run_rows_covers_every_row_once() {
        for t in [1, 2, 3, 8] {
            let mut data = vec![0u32; 7 * 5];
            Parallelism::threads(t).run_rows(&mut data, 5, |first_row, rows| {
                for (i, chunk) in rows.chunks_exact_mut(5).enumerate() {
                    for v in chunk.iter_mut() {
                        *v += (first_row + i) as u32 + 1;
                    }
                }
            });
            let expect: Vec<u32> = (0..7).flat_map(|r| [r + 1; 5]).collect();
            assert_eq!(data, expect, "threads {t}");
        }
    }

    #[test]
    fn run_rows_handles_fewer_rows_than_threads() {
        let mut data = vec![0u8; 6];
        Parallelism::threads(16).run_rows(&mut data, 3, |_, rows| {
            for v in rows.iter_mut() {
                *v = 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn map_ranges_partitions_exactly() {
        for t in [1, 2, 3, 5] {
            let parts = Parallelism::threads(t).map_ranges(100, 1, |s, e| (s, e));
            assert_eq!(parts[0].0, 0);
            assert_eq!(parts.last().unwrap().1, 100);
            for w in parts.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
            }
        }
    }

    #[test]
    fn map_ranges_respects_min_chunk() {
        let parts = Parallelism::threads(16).map_ranges(10, 8, |s, e| e - s);
        assert!(parts.len() <= 2);
        assert_eq!(parts.iter().sum::<usize>(), 10);
    }

    #[test]
    fn map_ranges_empty_input() {
        let parts: Vec<usize> = Parallelism::threads(4).map_ranges(0, 1, |_, _| 1);
        assert!(parts.is_empty());
    }
}
