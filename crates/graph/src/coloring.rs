//! Minimal edge coloring of regular bipartite multigraphs (König's
//! theorem — Theorem 6 of the paper).
//!
//! A regular bipartite multigraph of degree `Δ` is `Δ`-edge-colorable. The
//! constructive proof implemented here combines two classic ingredients:
//!
//! * **even degree** — an Euler partition splits the graph into two halves
//!   of degree `Δ/2`, which are colored recursively with disjoint palettes;
//! * **odd degree** — a perfect matching (Hopcroft–Karp; it exists by
//!   regularity) is peeled off as one color class, leaving an even-degree
//!   graph.
//!
//! For the power-of-two degrees arising in the scheduled permutation the
//! odd branch never triggers and the total cost is `O(E log Δ)`.

use crate::error::{GraphError, Result};
use crate::euler::euler_split;
use crate::matching::hopcroft_karp;
use crate::multigraph::RegularBipartite;

/// A proper edge coloring: `colors[e]` is the color of edge `e`, with
/// colors drawn from `0..num_colors`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeColoring {
    /// Color per edge id.
    pub colors: Vec<usize>,
    /// Size of the palette (= the graph's degree).
    pub num_colors: usize,
}

/// Strategy selection for [`edge_color_with`]; [`edge_color`] picks
/// [`Strategy::Hybrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Euler partition for even degrees, matching for odd — the default.
    Hybrid,
    /// Peel one perfect matching per color, `Δ` times. Simpler and slower;
    /// kept as the baseline for the coloring ablation bench.
    MatchingOnly,
}

/// Properly color the edges of `g` with exactly `g.degree()` colors.
pub fn edge_color(g: &RegularBipartite) -> Result<EdgeColoring> {
    edge_color_with(g, Strategy::Hybrid)
}

/// Properly color the edges of `g` using the given strategy.
pub fn edge_color_with(g: &RegularBipartite, strategy: Strategy) -> Result<EdgeColoring> {
    let mut colors = vec![usize::MAX; g.num_edges()];
    let all: Vec<usize> = (0..g.num_edges()).collect();
    match strategy {
        Strategy::Hybrid => color_recursive(g.nodes(), g.edges(), all, g.degree(), 0, &mut colors)?,
        Strategy::MatchingOnly => {
            let mut remaining = all;
            let mut degree = g.degree();
            let mut base = 0;
            while degree > 0 {
                let matched = peel_matching(g.nodes(), g.edges(), &remaining)?;
                for &e in &matched {
                    colors[e] = base;
                }
                remaining.retain(|e| colors[*e] == usize::MAX);
                base += 1;
                degree -= 1;
            }
        }
    }
    debug_assert!(colors.iter().all(|&c| c < g.degree()));
    Ok(EdgeColoring {
        colors,
        num_colors: g.degree(),
    })
}

fn color_recursive(
    nodes: usize,
    edges: &[(usize, usize)],
    subset: Vec<usize>,
    degree: usize,
    base: usize,
    colors: &mut [usize],
) -> Result<()> {
    match degree {
        0 => Ok(()),
        1 => {
            for e in subset {
                colors[e] = base;
            }
            Ok(())
        }
        d if d % 2 == 0 => {
            let (a, b) = euler_split(nodes, edges, &subset);
            color_recursive(nodes, edges, a, d / 2, base, colors)?;
            color_recursive(nodes, edges, b, d / 2, base + d / 2, colors)
        }
        d => {
            let matched = peel_matching(nodes, edges, &subset)?;
            for &e in &matched {
                colors[e] = base + d - 1;
            }
            let remaining: Vec<usize> = subset
                .into_iter()
                .filter(|&e| colors[e] == usize::MAX)
                .collect();
            color_recursive(nodes, edges, remaining, d - 1, base, colors)
        }
    }
}

/// Extract a perfect matching from the sub-multigraph `subset`, returning
/// one edge id per (left, right) matched pair.
fn peel_matching(nodes: usize, edges: &[(usize, usize)], subset: &[usize]) -> Result<Vec<usize>> {
    // Deduplicate parallel edges for the matching itself, but remember one
    // representative id per (u, v) pair so color classes name real edges.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    let mut rep: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::with_capacity(subset.len());
    for &e in subset {
        let (u, v) = edges[e];
        if let std::collections::hash_map::Entry::Vacant(slot) = rep.entry((u, v)) {
            slot.insert(e);
            adj[u].push(v);
        }
    }
    let m = hopcroft_karp(nodes, nodes, &adj);
    if m.size != nodes {
        return Err(GraphError::MatchingFailed {
            matched: m.size,
            nodes,
        });
    }
    let mut out = Vec::with_capacity(nodes);
    for (u, pv) in m.pair_left.iter().enumerate() {
        let v = pv.expect("perfect matching");
        out.push(rep[&(u, v)]);
    }
    Ok(out)
}

/// Check that `coloring` is a **proper** edge coloring of `g`: within each
/// vertex (on either side), all incident edges have distinct colors. For a
/// regular graph colored with `degree` colors, this means every vertex sees
/// every color exactly once.
pub fn verify_coloring(g: &RegularBipartite, coloring: &EdgeColoring) -> bool {
    if coloring.colors.len() != g.num_edges() || coloring.num_colors < g.degree() {
        return false;
    }
    let nc = coloring.num_colors;
    let mut left_seen = vec![false; g.nodes() * nc];
    let mut right_seen = vec![false; g.nodes() * nc];
    for (e, &(u, v)) in g.edges().iter().enumerate() {
        let c = coloring.colors[e];
        if c >= nc {
            return false;
        }
        if left_seen[u * nc + c] || right_seen[v * nc + c] {
            return false;
        }
        left_seen[u * nc + c] = true;
        right_seen[v * nc + c] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// Union of `deg` random perfect matchings: a `deg`-regular bipartite
    /// multigraph (parallel edges possible).
    fn random_regular(nodes: usize, deg: usize, seed: u64) -> RegularBipartite {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::with_capacity(nodes * deg);
        for _ in 0..deg {
            let mut rights: Vec<usize> = (0..nodes).collect();
            rights.shuffle(&mut rng);
            for (u, &v) in rights.iter().enumerate() {
                edges.push((u, v));
            }
        }
        RegularBipartite::new(nodes, edges).unwrap()
    }

    #[test]
    fn colors_degree_one() {
        let g = RegularBipartite::new(3, vec![(0, 1), (1, 2), (2, 0)]).unwrap();
        let c = edge_color(&g).unwrap();
        assert_eq!(c.num_colors, 1);
        assert!(verify_coloring(&g, &c));
    }

    #[test]
    fn colors_figure5_style_degree4() {
        // A 4-regular bipartite graph like the paper's Figure 5.
        let g = random_regular(6, 4, 5);
        let c = edge_color(&g).unwrap();
        assert_eq!(c.num_colors, 4);
        assert!(verify_coloring(&g, &c));
    }

    #[test]
    fn colors_power_of_two_degrees() {
        for deg in [2usize, 4, 8, 16, 32] {
            let g = random_regular(16, deg, deg as u64);
            let c = edge_color(&g).unwrap();
            assert_eq!(c.num_colors, deg);
            assert!(verify_coloring(&g, &c), "degree {deg}");
        }
    }

    #[test]
    fn colors_odd_and_mixed_degrees() {
        for deg in [3usize, 5, 6, 7, 12] {
            let g = random_regular(10, deg, 100 + deg as u64);
            let c = edge_color(&g).unwrap();
            assert_eq!(c.num_colors, deg);
            assert!(verify_coloring(&g, &c), "degree {deg}");
        }
    }

    #[test]
    fn matching_only_strategy_agrees_on_validity() {
        for deg in [1usize, 2, 3, 4, 5, 8] {
            let g = random_regular(12, deg, deg as u64);
            let c = edge_color_with(&g, Strategy::MatchingOnly).unwrap();
            assert_eq!(c.num_colors, deg);
            assert!(verify_coloring(&g, &c), "degree {deg}");
        }
    }

    #[test]
    fn colors_multigraph_with_heavy_parallel_edges() {
        // All w edges between node 0 pairs, etc.: "identity x 4".
        let nodes = 4;
        let mut edges = Vec::new();
        for u in 0..nodes {
            for _ in 0..4 {
                edges.push((u, u));
            }
        }
        let g = RegularBipartite::new(nodes, edges).unwrap();
        let c = edge_color(&g).unwrap();
        assert!(verify_coloring(&g, &c));
    }

    #[test]
    fn color_classes_are_perfect_matchings() {
        let g = random_regular(8, 6, 77);
        let c = edge_color(&g).unwrap();
        for color in 0..c.num_colors {
            let mut left = vec![false; g.nodes()];
            let mut right = vec![false; g.nodes()];
            let mut count = 0;
            for (e, &(u, v)) in g.edges().iter().enumerate() {
                if c.colors[e] == color {
                    assert!(!left[u] && !right[v]);
                    left[u] = true;
                    right[v] = true;
                    count += 1;
                }
            }
            assert_eq!(count, g.nodes(), "color {color} is not perfect");
        }
    }

    #[test]
    fn verify_rejects_improper() {
        let g = RegularBipartite::new(2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let bad = EdgeColoring {
            colors: vec![0, 0, 1, 1], // edges 0,1 share left node 0
            num_colors: 2,
        };
        assert!(!verify_coloring(&g, &bad));
        let short = EdgeColoring {
            colors: vec![0, 1],
            num_colors: 2,
        };
        assert!(!verify_coloring(&g, &short));
        let out_of_palette = EdgeColoring {
            colors: vec![0, 1, 2, 3],
            num_colors: 2,
        };
        assert!(!verify_coloring(&g, &out_of_palette));
    }

    #[test]
    fn large_power_of_two_coloring_is_fast_and_proper() {
        // Shape of a scheduled-permutation graph: 64 nodes, degree 64.
        let g = random_regular(64, 64, 123);
        let c = edge_color(&g).unwrap();
        assert_eq!(c.num_colors, 64);
        assert!(verify_coloring(&g, &c));
    }
}
