//! Minimal edge coloring of regular bipartite multigraphs (König's
//! theorem — Theorem 6 of the paper).
//!
//! A regular bipartite multigraph of degree `Δ` is `Δ`-edge-colorable. The
//! constructive proof implemented here combines two classic ingredients:
//!
//! * **even degree** — an Euler partition splits the graph into two halves
//!   of degree `Δ/2`, which are colored recursively with disjoint palettes;
//! * **odd degree** — a perfect matching (Hopcroft–Karp; it exists by
//!   regularity) is peeled off as one color class, leaving an even-degree
//!   graph.
//!
//! For the power-of-two degrees arising in the scheduled permutation the
//! odd branch never triggers and the total cost is `O(E log Δ)`.
//!
//! ## The plan-compiler rewrite: in-place, scratch-backed, forkable
//!
//! The recursion operates on a single edge-id buffer that is partitioned
//! **in place**: an Euler split reorders a slice into its two halves, a
//! matching peel moves the matched color class to the tail of the slice.
//! On return the buffer holds `Δ` contiguous blocks of `nodes` edges each
//! — block `k` *is* color class `k` — and one sequential pass converts
//! blocks into the per-edge color array. Temporaries (CSR adjacency,
//! visited flags, Hierholzer stack, matching state) live in a reusable
//! [`ColorScratch`], so the ~`2Δ` recursion nodes perform no per-level
//! `O(E)` allocations.
//!
//! Because the two halves of a split are disjoint sub-slices, they can be
//! colored by different threads with `split_at_mut` — no locks, no
//! `unsafe`. [`edge_color_par`] additionally colors connected components
//! independently (a component of a `d`-regular bipartite graph is itself
//! `d`-regular, so each gets the full palette). The thread budget decides
//! only *where* a sub-slice is colored, never how it is partitioned, so
//! the coloring is byte-identical at every thread count — the property
//! `hmm-plan` relies on for deterministic plan bytes.

use crate::error::{GraphError, Result};
use crate::euler::{euler_split_in_place, EulerScratch};
use crate::exec::Parallelism;
use crate::matching::{hopcroft_karp_core, MatchScratch, UNMATCHED};
use crate::multigraph::RegularBipartite;

/// A proper edge coloring: `colors[e]` is the color of edge `e`, with
/// colors drawn from `0..num_colors`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeColoring {
    /// Color per edge id.
    pub colors: Vec<usize>,
    /// Size of the palette (= the graph's degree).
    pub num_colors: usize,
}

/// Strategy selection for [`edge_color_with`]; [`edge_color`] picks
/// [`Strategy::Hybrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Euler partition for even degrees, matching for odd — the default.
    Hybrid,
    /// Peel one perfect matching per color, `Δ` times. Simpler and slower;
    /// kept as the baseline for the coloring ablation bench. Matchings
    /// are inherently sequential, so only the per-component fan-out of
    /// [`edge_color_par`] applies to this strategy.
    MatchingOnly,
}

/// Don't fork below this many edges: a scoped-thread spawn costs more
/// than coloring a small slice outright.
const FORK_MIN_EDGES: usize = 1 << 13;

/// Properly color the edges of `g` with exactly `g.degree()` colors.
pub fn edge_color(g: &RegularBipartite) -> Result<EdgeColoring> {
    edge_color_with(g, Strategy::Hybrid)
}

/// Properly color the edges of `g` using the given strategy.
pub fn edge_color_with(g: &RegularBipartite, strategy: Strategy) -> Result<EdgeColoring> {
    edge_color_par(g, strategy, Parallelism::sequential())
}

/// Properly color the edges of `g`, forking the coloring recursion (and
/// the independent connected components) across the scoped-thread budget
/// `par`. The result is **identical** to [`edge_color_with`] for every
/// budget: parallelism only relocates work, it never reorders the
/// deterministic split/peel partitions.
pub fn edge_color_par(
    g: &RegularBipartite,
    strategy: Strategy,
    par: Parallelism,
) -> Result<EdgeColoring> {
    let degree = g.degree();
    let m = g.num_edges();
    let mut colors = vec![usize::MAX; m];
    if m > 0 {
        assert!(
            2 * m <= u32::MAX as usize && 2 * g.nodes() <= u32::MAX as usize,
            "graph exceeds u32 index space"
        );
        let mut cg = split_components(g);
        let cx = Ctx {
            left_of: &cg.left_of,
            right_of: &cg.right_of,
            degree,
            strategy,
        };
        color_components(&cx, par, &cg.spans, &mut cg.ids)?;
        // Blocks -> colors: block `k` of each component is color class `k`.
        for span in &cg.spans {
            for k in 0..degree {
                let s = span.start + k * span.nodes;
                for &e in &cg.ids[s..s + span.nodes] {
                    colors[e as usize] = k;
                }
            }
        }
    }
    debug_assert!(colors.iter().all(|&c| c < degree));
    Ok(EdgeColoring {
        colors,
        num_colors: degree,
    })
}

/// Shared read-only context for the coloring recursion. `left_of[e]` /
/// `right_of[e]` are the **component-local** endpoint ids of global edge
/// `e`, so every component is a self-contained subproblem with scratch
/// sized to the component, not to the whole graph.
struct Ctx<'a> {
    left_of: &'a [u32],
    right_of: &'a [u32],
    degree: usize,
    strategy: Strategy,
}

/// One connected component: it owns `ids[start..end]` of the partitioned
/// edge-id buffer and has `nodes` vertices per side.
struct CompSpan {
    start: usize,
    end: usize,
    nodes: usize,
}

/// The component-partitioned graph: edge ids grouped by component
/// (discovery order, stable by edge id within a component) plus the
/// component-local endpoint tables.
struct CompGraph {
    left_of: Vec<u32>,
    right_of: Vec<u32>,
    ids: Vec<u32>,
    spans: Vec<CompSpan>,
}

/// Discover connected components (BFS from left vertices in ascending
/// order — deterministic) and relabel each component's vertices with
/// local ids `0..nodes` per side.
fn split_components(g: &RegularBipartite) -> CompGraph {
    let r = g.nodes();
    let total = 2 * r;
    let edges = g.edges();
    let m = edges.len();

    // Full CSR adjacency (vertex -> neighbour vertex), used only for the
    // component BFS; the recursion rebuilds per-slice CSRs from scratch.
    let mut off = vec![0u32; total + 1];
    for &(u, v) in edges {
        off[u + 1] += 1;
        off[v + r + 1] += 1;
    }
    for i in 0..total {
        off[i + 1] += off[i];
    }
    let mut cur: Vec<u32> = off[..total].to_vec();
    let mut adj = vec![0u32; 2 * m];
    for &(u, v) in edges {
        adj[cur[u] as usize] = (v + r) as u32;
        cur[u] += 1;
        adj[cur[v + r] as usize] = u as u32;
        cur[v + r] += 1;
    }

    let mut comp = vec![u32::MAX; total];
    let mut local = vec![0u32; total];
    let mut queue: Vec<u32> = Vec::new();
    let mut comp_nodes: Vec<usize> = Vec::new();
    for u0 in 0..r {
        if comp[u0] != u32::MAX {
            continue;
        }
        let cid = comp_nodes.len() as u32;
        let (mut nl, mut nr) = (0u32, 0u32);
        comp[u0] = cid;
        local[u0] = nl;
        nl += 1;
        queue.clear();
        queue.push(u0 as u32);
        let mut head = 0;
        while head < queue.len() {
            let w = queue[head] as usize;
            head += 1;
            for t in off[w]..off[w + 1] {
                let x = adj[t as usize] as usize;
                if comp[x] == u32::MAX {
                    comp[x] = cid;
                    if x < r {
                        local[x] = nl;
                        nl += 1;
                    } else {
                        local[x] = nr;
                        nr += 1;
                    }
                    queue.push(x as u32);
                }
            }
        }
        debug_assert_eq!(nl, nr, "regular component must be balanced");
        comp_nodes.push(nl as usize);
    }

    // Stable counting sort of edge ids by component, and the local
    // endpoint tables.
    let ncomp = comp_nodes.len();
    let mut counts = vec![0usize; ncomp + 1];
    for &(u, _) in edges {
        counts[comp[u] as usize + 1] += 1;
    }
    for i in 0..ncomp {
        counts[i + 1] += counts[i];
    }
    let starts = counts.clone();
    let mut pos = counts;
    let mut ids = vec![0u32; m];
    let mut left_of = vec![0u32; m];
    let mut right_of = vec![0u32; m];
    for (e, &(u, v)) in edges.iter().enumerate() {
        left_of[e] = local[u];
        right_of[e] = local[v + r];
        let c = comp[u] as usize;
        ids[pos[c]] = e as u32;
        pos[c] += 1;
    }
    let spans = (0..ncomp)
        .map(|c| CompSpan {
            start: starts[c],
            end: starts[c + 1],
            nodes: comp_nodes[c],
        })
        .collect();
    CompGraph {
        left_of,
        right_of,
        ids,
        spans,
    }
}

/// Color a run of components. `ids` covers exactly
/// `spans[0].start..spans.last().end` of the partitioned buffer. A
/// parallel budget splits the run at an edge-weighted midpoint and forks;
/// a single component spends the whole budget inside its own recursion
/// tree. Sequential execution reuses one [`ColorScratch`] across the
/// entire run.
fn color_components(
    cx: &Ctx<'_>,
    par: Parallelism,
    spans: &[CompSpan],
    ids: &mut [u32],
) -> Result<()> {
    if spans.is_empty() {
        return Ok(());
    }
    if spans.len() > 1 && par.is_parallel() && ids.len() >= FORK_MIN_EDGES {
        let offset = spans[0].start;
        let total = ids.len();
        let mut cut = 1;
        let mut acc = spans[0].end - spans[0].start;
        while cut < spans.len() - 1 && acc * 2 < total {
            acc += spans[cut].end - spans[cut].start;
            cut += 1;
        }
        let la = spans[cut].start - offset;
        let (a, b) = ids.split_at_mut(la);
        let (ra, rb) = par.join_weighted(
            la,
            total - la,
            |p| color_components(cx, p, &spans[..cut], a),
            |p| color_components(cx, p, &spans[cut..], b),
        );
        ra?;
        return rb;
    }
    let mut scratch = ColorScratch::default();
    let single = spans.len() == 1;
    let mut rest = ids;
    for span in spans {
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(span.end - span.start);
        rest = tail;
        let p = if single {
            par
        } else {
            Parallelism::sequential()
        };
        color_comp(cx, p, span.nodes, head, &mut scratch)?;
    }
    Ok(())
}

/// Color one component according to the strategy.
fn color_comp(
    cx: &Ctx<'_>,
    par: Parallelism,
    nodes: usize,
    ids: &mut [u32],
    scratch: &mut ColorScratch,
) -> Result<()> {
    match cx.strategy {
        Strategy::Hybrid => color_slice(cx, par, nodes, ids, cx.degree, scratch),
        Strategy::MatchingOnly => {
            let mut rest = ids;
            let mut d = cx.degree;
            // Peel color class d..1 off the front; a 1-regular remainder
            // already is its own (final) color block.
            while d > 1 {
                peel_matching_in_place(cx, nodes, rest, scratch, MatchBlock::Front)?;
                rest = &mut std::mem::take(&mut rest)[nodes..];
                d -= 1;
            }
            Ok(())
        }
    }
}

/// The hybrid recursion over one slice of the edge-id buffer. On success
/// the slice is partitioned into `degree` blocks of `nodes` edges; block
/// `k` is relative color `k`. Fork points hand the first half a fresh
/// scratch (at most `budget - 1` extra scratches ever exist) and keep the
/// caller's scratch on the second half.
fn color_slice(
    cx: &Ctx<'_>,
    par: Parallelism,
    nodes: usize,
    ids: &mut [u32],
    degree: usize,
    scratch: &mut ColorScratch,
) -> Result<()> {
    if degree <= 1 {
        return Ok(());
    }
    if degree.is_multiple_of(2) {
        euler_split_in_place(cx.left_of, cx.right_of, nodes, ids, &mut scratch.euler);
        let m = ids.len();
        let (a, b) = ids.split_at_mut(m / 2);
        if par.is_parallel() && m >= FORK_MIN_EDGES {
            let (ra, rb) = par.join(
                |p| {
                    let mut fresh = ColorScratch::default();
                    color_slice(cx, p, nodes, a, degree / 2, &mut fresh)
                },
                |p| color_slice(cx, p, nodes, b, degree / 2, scratch),
            );
            ra?;
            rb
        } else {
            color_slice(cx, par, nodes, a, degree / 2, scratch)?;
            color_slice(cx, par, nodes, b, degree / 2, scratch)
        }
    } else {
        peel_matching_in_place(cx, nodes, ids, scratch, MatchBlock::Tail)?;
        let m = ids.len();
        color_slice(cx, par, nodes, &mut ids[..m - nodes], degree - 1, scratch)
    }
}

/// Where [`peel_matching_in_place`] deposits the matched color class.
enum MatchBlock {
    /// Matched block first (matching-only strategy: colors peel forward).
    Front,
    /// Matched block last (hybrid odd case: the class takes the highest
    /// relative color, `degree - 1`).
    Tail,
}

/// Reusable buffers for the coloring recursion: Euler-split state,
/// Hopcroft–Karp state, and the peel's dedup-CSR staging. One scratch per
/// sequential task; capacity persists across every recursion level.
#[derive(Debug, Default)]
struct ColorScratch {
    euler: EulerScratch,
    matching: MatchScratch,
    peel: PeelScratch,
}

/// Matching-peel staging: slice-local edge buckets by left vertex, the
/// deduplicated CSR handed to Hopcroft–Karp, and the partition state.
#[derive(Debug, Default)]
struct PeelScratch {
    /// Bucket offsets per left vertex (plus sentinel); `cursor` is the
    /// bucket fill pointer.
    bucket_off: Vec<u32>,
    cursor: Vec<u32>,
    /// Slice-local edge indices grouped by left vertex, slice order within.
    bucket_edge: Vec<u32>,
    /// Dedup CSR: one entry per distinct (u, v); `adj_rep` remembers the
    /// representative slice-local edge so color classes name real edges.
    adj_off: Vec<u32>,
    adj_v: Vec<u32>,
    adj_rep: Vec<u32>,
    /// Last left vertex that saw right vertex `v` (dedup stamp).
    stamp: Vec<u32>,
    /// Matched flag per slice-local edge.
    matched: Vec<bool>,
    /// Matched global edge ids in left-vertex order.
    matched_ids: Vec<u32>,
}

/// Extract a perfect matching from the sub-multigraph `ids` and move it —
/// as a contiguous block in left-vertex order — to the front or tail of
/// the slice; the unmatched edges keep their relative order. Parallel
/// edges are deduplicated for the matching itself via a representative
/// per (u, v).
fn peel_matching_in_place(
    cx: &Ctx<'_>,
    nodes: usize,
    ids: &mut [u32],
    scratch: &mut ColorScratch,
    place: MatchBlock,
) -> Result<()> {
    let m = ids.len();
    let p = &mut scratch.peel;

    // Bucket slice-local edges by left vertex.
    p.bucket_off.clear();
    p.bucket_off.resize(nodes + 1, 0);
    for &e in ids.iter() {
        p.bucket_off[cx.left_of[e as usize] as usize + 1] += 1;
    }
    for u in 0..nodes {
        p.bucket_off[u + 1] += p.bucket_off[u];
    }
    p.cursor.clear();
    p.cursor.extend_from_slice(&p.bucket_off[..nodes]);
    p.bucket_edge.clear();
    p.bucket_edge.resize(m, 0);
    for (i, &e) in ids.iter().enumerate() {
        let u = cx.left_of[e as usize] as usize;
        p.bucket_edge[p.cursor[u] as usize] = i as u32;
        p.cursor[u] += 1;
    }

    // Dedup adjacency: left vertices ascend, so a stamp of the last left
    // vertex that saw each right vertex suffices (no per-call clearing of
    // anything sized by the slice).
    p.stamp.clear();
    p.stamp.resize(nodes, u32::MAX);
    p.adj_off.clear();
    p.adj_off.resize(nodes + 1, 0);
    p.adj_v.clear();
    p.adj_rep.clear();
    for u in 0..nodes {
        for t in p.bucket_off[u]..p.bucket_off[u + 1] {
            let le = p.bucket_edge[t as usize];
            let v = cx.right_of[ids[le as usize] as usize];
            if p.stamp[v as usize] == u as u32 {
                continue;
            }
            p.stamp[v as usize] = u as u32;
            p.adj_v.push(v);
            p.adj_rep.push(le);
        }
        p.adj_off[u + 1] = p.adj_v.len() as u32;
    }

    let size = hopcroft_karp_core(nodes, nodes, &p.adj_off, &p.adj_v, &mut scratch.matching);
    if size != nodes {
        return Err(GraphError::MatchingFailed {
            matched: size,
            nodes,
        });
    }

    // Collect the class in left-vertex order and flag its edges.
    p.matched.clear();
    p.matched.resize(m, false);
    p.matched_ids.clear();
    for u in 0..nodes {
        let v = scratch.matching.pair_left[u];
        debug_assert_ne!(v, UNMATCHED);
        let mut rep = u32::MAX;
        for t in p.adj_off[u]..p.adj_off[u + 1] {
            if p.adj_v[t as usize] == v {
                rep = p.adj_rep[t as usize];
                break;
            }
        }
        let le = rep as usize;
        p.matched[le] = true;
        p.matched_ids.push(ids[le]);
    }

    // Stable in-place partition around the matched block.
    match place {
        MatchBlock::Tail => {
            let mut w = 0usize;
            for i in 0..m {
                if !p.matched[i] {
                    ids[w] = ids[i];
                    w += 1;
                }
            }
            debug_assert_eq!(w, m - nodes);
            ids[w..].copy_from_slice(&p.matched_ids);
        }
        MatchBlock::Front => {
            let mut w = m;
            for i in (0..m).rev() {
                if !p.matched[i] {
                    w -= 1;
                    ids[w] = ids[i];
                }
            }
            debug_assert_eq!(w, nodes);
            ids[..nodes].copy_from_slice(&p.matched_ids);
        }
    }
    Ok(())
}

/// Check that `coloring` is a **proper** edge coloring of `g`: within each
/// vertex (on either side), all incident edges have distinct colors. For a
/// regular graph colored with `degree` colors, this means every vertex sees
/// every color exactly once.
pub fn verify_coloring(g: &RegularBipartite, coloring: &EdgeColoring) -> bool {
    if coloring.colors.len() != g.num_edges() || coloring.num_colors < g.degree() {
        return false;
    }
    let nc = coloring.num_colors;
    let mut left_seen = vec![false; g.nodes() * nc];
    let mut right_seen = vec![false; g.nodes() * nc];
    for (e, &(u, v)) in g.edges().iter().enumerate() {
        let c = coloring.colors[e];
        if c >= nc {
            return false;
        }
        if left_seen[u * nc + c] || right_seen[v * nc + c] {
            return false;
        }
        left_seen[u * nc + c] = true;
        right_seen[v * nc + c] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// Union of `deg` random perfect matchings: a `deg`-regular bipartite
    /// multigraph (parallel edges possible).
    fn random_regular(nodes: usize, deg: usize, seed: u64) -> RegularBipartite {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::with_capacity(nodes * deg);
        for _ in 0..deg {
            let mut rights: Vec<usize> = (0..nodes).collect();
            rights.shuffle(&mut rng);
            for (u, &v) in rights.iter().enumerate() {
                edges.push((u, v));
            }
        }
        RegularBipartite::new(nodes, edges).unwrap()
    }

    #[test]
    fn colors_degree_one() {
        let g = RegularBipartite::new(3, vec![(0, 1), (1, 2), (2, 0)]).unwrap();
        let c = edge_color(&g).unwrap();
        assert_eq!(c.num_colors, 1);
        assert!(verify_coloring(&g, &c));
    }

    #[test]
    fn colors_figure5_style_degree4() {
        // A 4-regular bipartite graph like the paper's Figure 5.
        let g = random_regular(6, 4, 5);
        let c = edge_color(&g).unwrap();
        assert_eq!(c.num_colors, 4);
        assert!(verify_coloring(&g, &c));
    }

    #[test]
    fn colors_power_of_two_degrees() {
        for deg in [2usize, 4, 8, 16, 32] {
            let g = random_regular(16, deg, deg as u64);
            let c = edge_color(&g).unwrap();
            assert_eq!(c.num_colors, deg);
            assert!(verify_coloring(&g, &c), "degree {deg}");
        }
    }

    #[test]
    fn colors_odd_and_mixed_degrees() {
        for deg in [3usize, 5, 6, 7, 12] {
            let g = random_regular(10, deg, 100 + deg as u64);
            let c = edge_color(&g).unwrap();
            assert_eq!(c.num_colors, deg);
            assert!(verify_coloring(&g, &c), "degree {deg}");
        }
    }

    #[test]
    fn matching_only_strategy_agrees_on_validity() {
        for deg in [1usize, 2, 3, 4, 5, 8] {
            let g = random_regular(12, deg, deg as u64);
            let c = edge_color_with(&g, Strategy::MatchingOnly).unwrap();
            assert_eq!(c.num_colors, deg);
            assert!(verify_coloring(&g, &c), "degree {deg}");
        }
    }

    #[test]
    fn colors_multigraph_with_heavy_parallel_edges() {
        // All w edges between node 0 pairs, etc.: "identity x 4".
        let nodes = 4;
        let mut edges = Vec::new();
        for u in 0..nodes {
            for _ in 0..4 {
                edges.push((u, u));
            }
        }
        let g = RegularBipartite::new(nodes, edges).unwrap();
        let c = edge_color(&g).unwrap();
        assert!(verify_coloring(&g, &c));
    }

    #[test]
    fn color_classes_are_perfect_matchings() {
        let g = random_regular(8, 6, 77);
        let c = edge_color(&g).unwrap();
        for color in 0..c.num_colors {
            let mut left = vec![false; g.nodes()];
            let mut right = vec![false; g.nodes()];
            let mut count = 0;
            for (e, &(u, v)) in g.edges().iter().enumerate() {
                if c.colors[e] == color {
                    assert!(!left[u] && !right[v]);
                    left[u] = true;
                    right[v] = true;
                    count += 1;
                }
            }
            assert_eq!(count, g.nodes(), "color {color} is not perfect");
        }
    }

    #[test]
    fn verify_rejects_improper() {
        let g = RegularBipartite::new(2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let bad = EdgeColoring {
            colors: vec![0, 0, 1, 1], // edges 0,1 share left node 0
            num_colors: 2,
        };
        assert!(!verify_coloring(&g, &bad));
        let short = EdgeColoring {
            colors: vec![0, 1],
            num_colors: 2,
        };
        assert!(!verify_coloring(&g, &short));
        let out_of_palette = EdgeColoring {
            colors: vec![0, 1, 2, 3],
            num_colors: 2,
        };
        assert!(!verify_coloring(&g, &out_of_palette));
    }

    #[test]
    fn large_power_of_two_coloring_is_fast_and_proper() {
        // Shape of a scheduled-permutation graph: 64 nodes, degree 64.
        let g = random_regular(64, 64, 123);
        let c = edge_color(&g).unwrap();
        assert_eq!(c.num_colors, 64);
        assert!(verify_coloring(&g, &c));
    }

    #[test]
    fn parallel_budget_matches_sequential_exactly() {
        for (nodes, deg, seed) in [(16usize, 8usize, 1u64), (10, 7, 2), (32, 12, 3)] {
            let g = random_regular(nodes, deg, seed);
            let seq = edge_color_with(&g, Strategy::Hybrid).unwrap();
            for t in [2, 3, 4, 8] {
                let par = edge_color_par(&g, Strategy::Hybrid, Parallelism::threads(t)).unwrap();
                assert_eq!(par, seq, "nodes {nodes} deg {deg} threads {t}");
            }
        }
    }

    #[test]
    fn parallel_colors_disconnected_components() {
        // Many small components (identity-style): exercises the
        // per-component fan-out and local vertex relabeling.
        let nodes = 64;
        let deg = 4;
        let mut edges = Vec::new();
        for u in 0..nodes {
            for _ in 0..deg {
                edges.push((u, u));
            }
        }
        let g = RegularBipartite::new(nodes, edges).unwrap();
        let seq = edge_color_with(&g, Strategy::Hybrid).unwrap();
        let par = edge_color_par(&g, Strategy::Hybrid, Parallelism::threads(4)).unwrap();
        assert_eq!(par, seq);
        assert!(verify_coloring(&g, &par));
    }

    #[test]
    fn parallel_matching_only_matches_sequential() {
        let g = random_regular(12, 5, 9);
        let seq = edge_color_with(&g, Strategy::MatchingOnly).unwrap();
        let par = edge_color_par(&g, Strategy::MatchingOnly, Parallelism::threads(4)).unwrap();
        assert_eq!(par, seq);
        assert!(verify_coloring(&g, &par));
    }

    #[test]
    fn fork_threshold_is_exercised() {
        // Big enough that the recursion actually forks (> FORK_MIN_EDGES
        // edges at the top splits): parallel must still equal sequential.
        let g = random_regular(512, 32, 42); // 16384 edges
        let seq = edge_color_with(&g, Strategy::Hybrid).unwrap();
        let par = edge_color_par(&g, Strategy::Hybrid, Parallelism::threads(4)).unwrap();
        assert_eq!(par, seq);
        assert!(verify_coloring(&g, &par));
    }
}
