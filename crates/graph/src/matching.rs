//! Hopcroft–Karp maximum bipartite matching.
//!
//! Used by the edge-coloring recursion to peel one perfect matching (= one
//! color class) off an odd-degree regular bipartite graph; regularity
//! guarantees the matching is perfect (König/Hall), which
//! [`crate::coloring::edge_color`] checks and reports as an internal error
//! if violated.

/// Result of a maximum-matching computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// `pair_left[u] = Some(v)` iff left `u` is matched to right `v`.
    pub pair_left: Vec<Option<usize>>,
    /// `pair_right[v] = Some(u)` iff right `v` is matched to left `u`.
    pub pair_right: Vec<Option<usize>>,
    /// Number of matched pairs.
    pub size: usize,
}

const INF: u32 = u32::MAX;

/// Compute a maximum matching of the bipartite graph given as left-side
/// adjacency lists (`adj[u]` lists the right-side neighbours of `u`;
/// parallel entries are tolerated). `O(E √V)`.
pub fn hopcroft_karp(left: usize, right: usize, adj: &[Vec<usize>]) -> Matching {
    assert_eq!(adj.len(), left, "adjacency list size mismatch");
    let mut pair_left: Vec<Option<usize>> = vec![None; left];
    let mut pair_right: Vec<Option<usize>> = vec![None; right];
    let mut dist: Vec<u32> = vec![0; left];
    let mut queue: Vec<usize> = Vec::with_capacity(left);
    let mut size = 0usize;

    loop {
        // BFS phase: layer unmatched left vertices.
        queue.clear();
        for u in 0..left {
            if pair_left[u].is_none() {
                dist[u] = 0;
                queue.push(u);
            } else {
                dist[u] = INF;
            }
        }
        let mut found_augmenting = false;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in &adj[u] {
                match pair_right[v] {
                    None => found_augmenting = true,
                    Some(u2) => {
                        if dist[u2] == INF {
                            dist[u2] = dist[u] + 1;
                            queue.push(u2);
                        }
                    }
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: find vertex-disjoint augmenting paths along layers.
        for u in 0..left {
            if pair_left[u].is_none() && dfs(u, adj, &mut pair_left, &mut pair_right, &mut dist) {
                size += 1;
            }
        }
    }

    Matching {
        pair_left,
        pair_right,
        size,
    }
}

fn dfs(
    u: usize,
    adj: &[Vec<usize>],
    pair_left: &mut [Option<usize>],
    pair_right: &mut [Option<usize>],
    dist: &mut [u32],
) -> bool {
    for i in 0..adj[u].len() {
        let v = adj[u][i];
        let ok = match pair_right[v] {
            None => true,
            Some(u2) => dist[u2] == dist[u] + 1 && dfs(u2, adj, pair_left, pair_right, dist),
        };
        if ok {
            pair_left[u] = Some(v);
            pair_right[v] = Some(u);
            return true;
        }
    }
    dist[u] = INF;
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(m: &Matching, adj: &[Vec<usize>]) {
        let mut used_right = std::collections::HashSet::new();
        let mut count = 0;
        for (u, pv) in m.pair_left.iter().enumerate() {
            if let Some(v) = pv {
                assert!(adj[u].contains(v), "matched pair ({u},{v}) is not an edge");
                assert!(used_right.insert(*v), "right {v} matched twice");
                assert_eq!(m.pair_right[*v], Some(u));
                count += 1;
            }
        }
        assert_eq!(count, m.size);
    }

    #[test]
    fn perfect_matching_in_identity_graph() {
        let adj: Vec<Vec<usize>> = (0..5).map(|u| vec![u]).collect();
        let m = hopcroft_karp(5, 5, &adj);
        assert_eq!(m.size, 5);
        verify(&m, &adj);
    }

    #[test]
    fn perfect_matching_in_complete_bipartite() {
        let adj: Vec<Vec<usize>> = (0..6).map(|_| (0..6).collect()).collect();
        let m = hopcroft_karp(6, 6, &adj);
        assert_eq!(m.size, 6);
        verify(&m, &adj);
    }

    #[test]
    fn maximum_matching_in_path() {
        // L0-R0, L1-R0, L1-R1: max matching 2 (L0-R0, L1-R1).
        let adj = vec![vec![0], vec![0, 1]];
        let m = hopcroft_karp(2, 2, &adj);
        assert_eq!(m.size, 2);
        verify(&m, &adj);
    }

    #[test]
    fn deficient_graph_matches_less() {
        // Both left vertices only see right 0.
        let adj = vec![vec![0], vec![0]];
        let m = hopcroft_karp(2, 2, &adj);
        assert_eq!(m.size, 1);
        verify(&m, &adj);
    }

    #[test]
    fn parallel_entries_tolerated() {
        let adj = vec![vec![0, 0, 1], vec![0, 0]];
        let m = hopcroft_karp(2, 2, &adj);
        assert_eq!(m.size, 2);
        verify(&m, &adj);
    }

    #[test]
    fn empty_graph() {
        let m = hopcroft_karp(0, 0, &[]);
        assert_eq!(m.size, 0);
    }

    #[test]
    fn isolated_vertices() {
        let adj = vec![vec![], vec![1]];
        let m = hopcroft_karp(2, 2, &adj);
        assert_eq!(m.size, 1);
        verify(&m, &adj);
    }

    #[test]
    fn regular_random_graph_has_perfect_matching() {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let n = 64;
        // 3-regular: union of 3 random permutations (may include parallels).
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for _ in 0..3 {
            let mut rights: Vec<usize> = (0..n).collect();
            rights.shuffle(&mut rng);
            for (u, &v) in rights.iter().enumerate() {
                adj[u].push(v);
            }
        }
        let m = hopcroft_karp(n, n, &adj);
        assert_eq!(m.size, n, "regular bipartite graphs have perfect matchings");
        verify(&m, &adj);
    }

    #[test]
    fn larger_sparse_graph_runs_fast() {
        // Cycle-like structure: L_u -> {R_u, R_(u+1)}: perfect matching.
        let n = 10_000;
        let adj: Vec<Vec<usize>> = (0..n).map(|u| vec![u, (u + 1) % n]).collect();
        let m = hopcroft_karp(n, n, &adj);
        assert_eq!(m.size, n);
    }
}
