//! Hopcroft–Karp maximum bipartite matching.
//!
//! Used by the edge-coloring recursion to peel one perfect matching (= one
//! color class) off an odd-degree regular bipartite graph; regularity
//! guarantees the matching is perfect (König/Hall), which
//! [`crate::coloring::edge_color`] checks and reports as an internal error
//! if violated.
//!
//! The worker is [`hopcroft_karp_core`]: it runs on a CSR adjacency and
//! draws the BFS queue, the layer vector, and both pairing vectors from a
//! reusable [`MatchScratch`], so repeated peels (one per odd-degree
//! stratum of the coloring recursion) perform no allocations after the
//! first. The public [`hopcroft_karp`] keeps the original `Vec<Vec<_>>`
//! signature as a thin wrapper.

/// Result of a maximum-matching computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// `pair_left[u] = Some(v)` iff left `u` is matched to right `v`.
    pub pair_left: Vec<Option<usize>>,
    /// `pair_right[v] = Some(u)` iff right `v` is matched to left `u`.
    pub pair_right: Vec<Option<usize>>,
    /// Number of matched pairs.
    pub size: usize,
}

const INF: u32 = u32::MAX;

/// "Unmatched" sentinel in [`MatchScratch::pair_left`] / `pair_right`.
pub(crate) const UNMATCHED: u32 = u32::MAX;

/// Reusable Hopcroft–Karp state. The BFS queue and layer (`dist`) vectors
/// were always shared across the phases of one run; keeping them here also
/// shares them across *runs*, which matters when the coloring peels a
/// matching at every odd-degree stratum.
#[derive(Debug, Default)]
pub(crate) struct MatchScratch {
    /// `pair_left[u]` = matched right vertex or [`UNMATCHED`].
    pub(crate) pair_left: Vec<u32>,
    /// `pair_right[v]` = matched left vertex or [`UNMATCHED`].
    pub(crate) pair_right: Vec<u32>,
    /// BFS layer per left vertex.
    dist: Vec<u32>,
    /// BFS queue.
    queue: Vec<u32>,
}

/// Compute a maximum matching over a CSR adjacency (`adj_v[adj_off[u] ..
/// adj_off[u + 1]]` lists the right neighbours of left `u`; parallel
/// entries are tolerated). Pairings land in `s.pair_left` / `s.pair_right`;
/// returns the matching size. `O(E √V)`, allocation-free after warm-up.
pub(crate) fn hopcroft_karp_core(
    left: usize,
    right: usize,
    adj_off: &[u32],
    adj_v: &[u32],
    s: &mut MatchScratch,
) -> usize {
    debug_assert_eq!(adj_off.len(), left + 1);
    s.pair_left.clear();
    s.pair_left.resize(left, UNMATCHED);
    s.pair_right.clear();
    s.pair_right.resize(right, UNMATCHED);
    s.dist.clear();
    s.dist.resize(left, 0);
    s.queue.clear();
    s.queue.reserve(left);
    let mut size = 0usize;

    loop {
        // BFS phase: layer unmatched left vertices.
        s.queue.clear();
        for u in 0..left {
            if s.pair_left[u] == UNMATCHED {
                s.dist[u] = 0;
                s.queue.push(u as u32);
            } else {
                s.dist[u] = INF;
            }
        }
        let mut found_augmenting = false;
        let mut head = 0;
        while head < s.queue.len() {
            let u = s.queue[head] as usize;
            head += 1;
            for t in adj_off[u]..adj_off[u + 1] {
                let v = adj_v[t as usize] as usize;
                let u2 = s.pair_right[v];
                if u2 == UNMATCHED {
                    found_augmenting = true;
                } else if s.dist[u2 as usize] == INF {
                    s.dist[u2 as usize] = s.dist[u] + 1;
                    s.queue.push(u2);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: find vertex-disjoint augmenting paths along layers.
        for u in 0..left {
            if s.pair_left[u] == UNMATCHED
                && dfs(
                    u,
                    adj_off,
                    adj_v,
                    &mut s.pair_left,
                    &mut s.pair_right,
                    &mut s.dist,
                )
            {
                size += 1;
            }
        }
    }

    size
}

fn dfs(
    u: usize,
    adj_off: &[u32],
    adj_v: &[u32],
    pair_left: &mut [u32],
    pair_right: &mut [u32],
    dist: &mut [u32],
) -> bool {
    for t in adj_off[u]..adj_off[u + 1] {
        let v = adj_v[t as usize] as usize;
        let u2 = pair_right[v];
        let ok = u2 == UNMATCHED
            || (dist[u2 as usize] == dist[u] + 1
                && dfs(u2 as usize, adj_off, adj_v, pair_left, pair_right, dist));
        if ok {
            pair_left[u] = v as u32;
            pair_right[v] = u as u32;
            return true;
        }
    }
    dist[u] = INF;
    false
}

/// Compute a maximum matching of the bipartite graph given as left-side
/// adjacency lists (`adj[u]` lists the right-side neighbours of `u`;
/// parallel entries are tolerated). `O(E √V)`.
pub fn hopcroft_karp(left: usize, right: usize, adj: &[Vec<usize>]) -> Matching {
    assert_eq!(adj.len(), left, "adjacency list size mismatch");
    let mut adj_off = Vec::with_capacity(left + 1);
    adj_off.push(0u32);
    let mut adj_v: Vec<u32> = Vec::with_capacity(adj.iter().map(Vec::len).sum());
    for row in adj {
        adj_v.extend(row.iter().map(|&v| v as u32));
        adj_off.push(adj_v.len() as u32);
    }
    let mut scratch = MatchScratch::default();
    let size = hopcroft_karp_core(left, right, &adj_off, &adj_v, &mut scratch);
    let unpack = |p: &[u32]| {
        p.iter()
            .map(|&x| (x != UNMATCHED).then_some(x as usize))
            .collect()
    };
    Matching {
        pair_left: unpack(&scratch.pair_left),
        pair_right: unpack(&scratch.pair_right),
        size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(m: &Matching, adj: &[Vec<usize>]) {
        let mut used_right = std::collections::HashSet::new();
        let mut count = 0;
        for (u, pv) in m.pair_left.iter().enumerate() {
            if let Some(v) = pv {
                assert!(adj[u].contains(v), "matched pair ({u},{v}) is not an edge");
                assert!(used_right.insert(*v), "right {v} matched twice");
                assert_eq!(m.pair_right[*v], Some(u));
                count += 1;
            }
        }
        assert_eq!(count, m.size);
    }

    #[test]
    fn perfect_matching_in_identity_graph() {
        let adj: Vec<Vec<usize>> = (0..5).map(|u| vec![u]).collect();
        let m = hopcroft_karp(5, 5, &adj);
        assert_eq!(m.size, 5);
        verify(&m, &adj);
    }

    #[test]
    fn perfect_matching_in_complete_bipartite() {
        let adj: Vec<Vec<usize>> = (0..6).map(|_| (0..6).collect()).collect();
        let m = hopcroft_karp(6, 6, &adj);
        assert_eq!(m.size, 6);
        verify(&m, &adj);
    }

    #[test]
    fn maximum_matching_in_path() {
        // L0-R0, L1-R0, L1-R1: max matching 2 (L0-R0, L1-R1).
        let adj = vec![vec![0], vec![0, 1]];
        let m = hopcroft_karp(2, 2, &adj);
        assert_eq!(m.size, 2);
        verify(&m, &adj);
    }

    #[test]
    fn deficient_graph_matches_less() {
        // Both left vertices only see right 0.
        let adj = vec![vec![0], vec![0]];
        let m = hopcroft_karp(2, 2, &adj);
        assert_eq!(m.size, 1);
        verify(&m, &adj);
    }

    #[test]
    fn parallel_entries_tolerated() {
        let adj = vec![vec![0, 0, 1], vec![0, 0]];
        let m = hopcroft_karp(2, 2, &adj);
        assert_eq!(m.size, 2);
        verify(&m, &adj);
    }

    #[test]
    fn empty_graph() {
        let m = hopcroft_karp(0, 0, &[]);
        assert_eq!(m.size, 0);
    }

    #[test]
    fn isolated_vertices() {
        let adj = vec![vec![], vec![1]];
        let m = hopcroft_karp(2, 2, &adj);
        assert_eq!(m.size, 1);
        verify(&m, &adj);
    }

    #[test]
    fn regular_random_graph_has_perfect_matching() {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let n = 64;
        // 3-regular: union of 3 random permutations (may include parallels).
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for _ in 0..3 {
            let mut rights: Vec<usize> = (0..n).collect();
            rights.shuffle(&mut rng);
            for (u, &v) in rights.iter().enumerate() {
                adj[u].push(v);
            }
        }
        let m = hopcroft_karp(n, n, &adj);
        assert_eq!(m.size, n, "regular bipartite graphs have perfect matchings");
        verify(&m, &adj);
    }

    #[test]
    fn larger_sparse_graph_runs_fast() {
        // Cycle-like structure: L_u -> {R_u, R_(u+1)}: perfect matching.
        let n = 10_000;
        let adj: Vec<Vec<usize>> = (0..n).map(|u| vec![u, (u + 1) % n]).collect();
        let m = hopcroft_karp(n, n, &adj);
        assert_eq!(m.size, n);
    }

    #[test]
    fn scratch_reuse_across_runs_is_clean() {
        // One scratch, two graphs of different sizes: stale pairings from
        // the first run must not leak into the second.
        let mut scratch = MatchScratch::default();
        let adj_off_a: Vec<u32> = (0..=6).collect();
        let adj_v_a: Vec<u32> = (0..6).collect(); // identity on 6
        assert_eq!(
            hopcroft_karp_core(6, 6, &adj_off_a, &adj_v_a, &mut scratch),
            6
        );
        let adj_off_b = vec![0u32, 1, 2];
        let adj_v_b = vec![0u32, 0]; // both left see right 0
        assert_eq!(
            hopcroft_karp_core(2, 2, &adj_off_b, &adj_v_b, &mut scratch),
            1
        );
        assert_eq!(scratch.pair_left.len(), 2);
    }
}
