//! Errors for bipartite-graph construction and coloring.

use core::fmt;

/// Errors raised by graph construction and edge coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is outside `0..nodes_per_side`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: usize,
        /// Nodes per side.
        nodes: usize,
    },
    /// The graph is not regular: two nodes have different degrees.
    NotRegular {
        /// A node whose degree differs.
        node: usize,
        /// Its degree.
        degree: usize,
        /// The degree of node 0 on the left side.
        expected: usize,
    },
    /// The edge count is not `nodes * degree` (implied by regularity but
    /// reported separately for clearer diagnostics on empty sides).
    DegenerateGraph {
        /// Nodes per side.
        nodes: usize,
        /// Total edges.
        edges: usize,
    },
    /// Internal invariant violation — a perfect matching could not be found
    /// in a graph that regularity guarantees has one. Indicates a bug, never
    /// expected for validated inputs.
    MatchingFailed {
        /// Size of the matching found.
        matched: usize,
        /// Nodes per side.
        nodes: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range (side has {nodes} nodes)")
            }
            GraphError::NotRegular {
                node,
                degree,
                expected,
            } => write!(
                f,
                "graph not regular: node {node} has degree {degree}, expected {expected}"
            ),
            GraphError::DegenerateGraph { nodes, edges } => {
                write!(f, "degenerate graph: {nodes} nodes per side, {edges} edges")
            }
            GraphError::MatchingFailed { matched, nodes } => write!(
                f,
                "internal error: perfect matching not found ({matched}/{nodes} matched)"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(GraphError::NodeOutOfRange { node: 9, nodes: 4 }
            .to_string()
            .contains('9'));
        assert!(GraphError::NotRegular {
            node: 1,
            degree: 3,
            expected: 4
        }
        .to_string()
        .contains("regular"));
        assert!(GraphError::MatchingFailed {
            matched: 3,
            nodes: 4
        }
        .to_string()
        .contains("matching"));
    }
}
