//! Euler partition: split an even-degree bipartite multigraph into two
//! halves of equal degree.
//!
//! Walking an Eulerian circuit and assigning edges alternately to the two
//! halves splits every vertex's degree exactly in half, because consecutive
//! circuit edges share a vertex and every circuit in a bipartite graph has
//! even length. Applied recursively this yields the classic
//! `O(E log deg)` edge coloring for power-of-two degrees — the fast path
//! exploited by the scheduled permutation, whose graphs have degree
//! `√n / something` that is always a power of two.

/// Split the sub-multigraph formed by `subset` (edge ids into `edges`) into
/// two halves `(a, b)` such that every vertex has exactly half of its
/// `subset`-degree in each half.
///
/// Every vertex must have **even** degree within `subset`; the caller (the
/// coloring recursion) guarantees this. `nodes` is the number of vertices
/// per side.
pub fn euler_split(
    nodes: usize,
    edges: &[(usize, usize)],
    subset: &[usize],
) -> (Vec<usize>, Vec<usize>) {
    // Vertices 0..nodes are the left side, nodes..2*nodes the right side.
    let total_nodes = 2 * nodes;
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); total_nodes];
    for &e in subset {
        let (u, v) = edges[e];
        let (u, v) = (u, v + nodes);
        adj[u].push((e, v));
        adj[v].push((e, u));
    }
    let mut used = vec![false; edges.len()];
    let mut ptr = vec![0usize; total_nodes];
    let mut half_a = Vec::with_capacity(subset.len() / 2);
    let mut half_b = Vec::with_capacity(subset.len() - subset.len() / 2);

    // Iterative Hierholzer: the pop order yields an Eulerian circuit of each
    // connected component; alternate edges between the halves.
    let mut stack: Vec<(usize, Option<usize>)> = Vec::new();
    let mut circuit: Vec<usize> = Vec::new();
    for start in 0..total_nodes {
        if adj[start].is_empty() {
            continue;
        }
        circuit.clear();
        stack.push((start, None));
        while let Some(&(v, e_in)) = stack.last() {
            // Advance past edges already consumed via the other endpoint.
            let mut advanced = false;
            while ptr[v] < adj[v].len() {
                let (e, to) = adj[v][ptr[v]];
                ptr[v] += 1;
                if !used[e] {
                    used[e] = true;
                    stack.push((to, Some(e)));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                stack.pop();
                if let Some(e) = e_in {
                    circuit.push(e);
                }
            }
        }
        for (i, &e) in circuit.iter().enumerate() {
            if i % 2 == 0 {
                half_a.push(e);
            } else {
                half_b.push(e);
            }
        }
    }
    (half_a, half_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Degree of each (side, node) within a subset of edge ids.
    fn degrees(
        nodes: usize,
        edges: &[(usize, usize)],
        subset: &[usize],
    ) -> (Vec<usize>, Vec<usize>) {
        let mut l = vec![0usize; nodes];
        let mut r = vec![0usize; nodes];
        for &e in subset {
            l[edges[e].0] += 1;
            r[edges[e].1] += 1;
        }
        (l, r)
    }

    fn check_split(nodes: usize, edges: &[(usize, usize)]) {
        let all: Vec<usize> = (0..edges.len()).collect();
        let (l0, r0) = degrees(nodes, edges, &all);
        let (a, b) = euler_split(nodes, edges, &all);
        assert_eq!(a.len() + b.len(), edges.len());
        let mut seen = vec![false; edges.len()];
        for &e in a.iter().chain(&b) {
            assert!(!seen[e], "edge {e} assigned twice");
            seen[e] = true;
        }
        let (la, ra) = degrees(nodes, edges, &a);
        let (lb, rb) = degrees(nodes, edges, &b);
        for v in 0..nodes {
            assert_eq!(la[v], l0[v] / 2, "left {v} uneven");
            assert_eq!(lb[v], l0[v] / 2);
            assert_eq!(ra[v], r0[v] / 2, "right {v} uneven");
            assert_eq!(rb[v], r0[v] / 2);
        }
    }

    #[test]
    fn splits_double_cover_of_matching() {
        // Degree 2: each node has the same two parallel edges.
        check_split(3, &[(0, 1), (0, 1), (1, 2), (1, 2), (2, 0), (2, 0)]);
    }

    #[test]
    fn splits_complete_bipartite_k22() {
        check_split(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn splits_complete_bipartite_k44() {
        let mut edges = Vec::new();
        for u in 0..4 {
            for v in 0..4 {
                edges.push((u, v));
            }
        }
        check_split(4, &edges);
    }

    #[test]
    fn splits_disconnected_components() {
        // Two disjoint 2-cycles.
        check_split(
            4,
            &[
                (0, 0),
                (0, 0),
                (1, 1),
                (1, 1),
                (2, 3),
                (2, 3),
                (3, 2),
                (3, 2),
            ],
        );
    }

    #[test]
    fn splits_subset_only() {
        // Full graph has odd degree, but the chosen subset has even degree.
        let edges = vec![(0, 0), (0, 1), (1, 0), (1, 1), (0, 0), (1, 1)];
        let subset = vec![0, 1, 2, 3]; // K22, degree 2
        let (a, b) = euler_split(2, &edges, &subset);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        for &e in a.iter().chain(&b) {
            assert!(subset.contains(&e));
        }
    }

    #[test]
    fn splits_random_regular_multigraph() {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        // Build a random 8-regular bipartite multigraph on 16+16 nodes as a
        // union of 8 random perfect matchings.
        let mut rng = StdRng::seed_from_u64(3);
        let nodes = 16;
        let mut edges = Vec::new();
        for _ in 0..8 {
            let mut rights: Vec<usize> = (0..nodes).collect();
            rights.shuffle(&mut rng);
            for (u, &v) in rights.iter().enumerate() {
                edges.push((u, v));
            }
        }
        check_split(nodes, &edges);
    }

    #[test]
    fn empty_subset_yields_empty_halves() {
        let (a, b) = euler_split(2, &[(0, 0), (1, 1)], &[]);
        assert!(a.is_empty());
        assert!(b.is_empty());
    }
}
