//! Euler partition: split an even-degree bipartite multigraph into two
//! halves of equal degree.
//!
//! Walking an Eulerian circuit and assigning edges alternately to the two
//! halves splits every vertex's degree exactly in half, because consecutive
//! circuit edges share a vertex and every circuit in a bipartite graph has
//! even length. Applied recursively this yields the classic
//! `O(E log deg)` edge coloring for power-of-two degrees — the fast path
//! exploited by the scheduled permutation, whose graphs have degree
//! `√n / something` that is always a power of two.
//!
//! The worker is [`euler_split_in_place`]: it partitions a slice of edge
//! ids in place (first half, then second half) and draws every temporary —
//! CSR adjacency, visited flags, Hierholzer stack — from a reusable
//! [`EulerScratch`], so the coloring recursion performs no per-level
//! allocations. The public [`euler_split`] keeps the original allocating
//! signature as a thin wrapper.

/// Reusable buffers for [`euler_split_in_place`]. All vectors are resized
/// on use, so one scratch serves subproblems of any size; capacity is
/// retained across calls, which is what makes the coloring recursion
/// allocation-lean.
#[derive(Debug, Default)]
pub(crate) struct EulerScratch {
    /// CSR row offsets over the `2 * nodes` vertices (plus sentinel).
    offsets: Vec<u32>,
    /// Per-vertex fill cursor during CSR build; reused as the Hierholzer
    /// read pointer afterwards.
    cursor: Vec<u32>,
    /// CSR payload: index of the edge *within the slice* (not the global id).
    adj_edge: Vec<u32>,
    /// CSR payload: the local vertex at the other end.
    adj_to: Vec<u32>,
    /// Consumed flag per slice-local edge.
    used: Vec<bool>,
    /// Hierholzer stack: `(vertex, incoming slice-local edge + 1; 0 = none)`.
    stack: Vec<(u32, u32)>,
    /// Eulerian circuit of the current component, as slice-local edges.
    circuit: Vec<u32>,
    /// Global edge ids of the two halves, staged before the copy-back.
    half_a: Vec<u32>,
    half_b: Vec<u32>,
}

/// Partition `ids` (global edge ids; every vertex must have even degree in
/// the sub-multigraph they induce) so that the first `ids.len() / 2`
/// entries and the rest each contain exactly half of every vertex's
/// degree. `left_of[e]` / `right_of[e]` give the local left/right vertex
/// of global edge `e`, both in `0..nodes`.
///
/// Deterministic: the output depends only on `(ids, left_of, right_of,
/// nodes)`, never on thread count — this is the invariant the parallel
/// coloring relies on for byte-identical results.
pub(crate) fn euler_split_in_place(
    left_of: &[u32],
    right_of: &[u32],
    nodes: usize,
    ids: &mut [u32],
    s: &mut EulerScratch,
) {
    let m = ids.len();
    let total = 2 * nodes;

    // CSR adjacency over local vertices: left side 0..nodes, right side
    // nodes..2*nodes. Entries appear in slice order per vertex, matching
    // the traversal order of the original Vec<Vec<_>> implementation.
    s.offsets.clear();
    s.offsets.resize(total + 1, 0);
    for &e in ids.iter() {
        s.offsets[left_of[e as usize] as usize + 1] += 1;
        s.offsets[right_of[e as usize] as usize + nodes + 1] += 1;
    }
    for v in 0..total {
        s.offsets[v + 1] += s.offsets[v];
    }
    s.cursor.clear();
    s.cursor.extend_from_slice(&s.offsets[..total]);
    s.adj_edge.clear();
    s.adj_edge.resize(2 * m, 0);
    s.adj_to.clear();
    s.adj_to.resize(2 * m, 0);
    for (i, &e) in ids.iter().enumerate() {
        let u = left_of[e as usize] as usize;
        let v = right_of[e as usize] as usize + nodes;
        let cu = s.cursor[u] as usize;
        s.adj_edge[cu] = i as u32;
        s.adj_to[cu] = v as u32;
        s.cursor[u] += 1;
        let cv = s.cursor[v] as usize;
        s.adj_edge[cv] = i as u32;
        s.adj_to[cv] = u as u32;
        s.cursor[v] += 1;
    }
    s.cursor.copy_from_slice(&s.offsets[..total]);

    s.used.clear();
    s.used.resize(m, false);
    s.half_a.clear();
    s.half_b.clear();

    // Iterative Hierholzer: the pop order yields an Eulerian circuit of
    // each connected component; alternate circuit edges between the halves
    // (each circuit has even length, so the halves stay balanced).
    for start in 0..total {
        if s.offsets[start] == s.offsets[start + 1] {
            continue;
        }
        s.circuit.clear();
        s.stack.push((start as u32, 0));
        while let Some(&(v, e_in)) = s.stack.last() {
            let v = v as usize;
            let mut advanced = false;
            while s.cursor[v] < s.offsets[v + 1] {
                let p = s.cursor[v] as usize;
                s.cursor[v] += 1;
                let le = s.adj_edge[p] as usize;
                if !s.used[le] {
                    s.used[le] = true;
                    s.stack.push((s.adj_to[p], le as u32 + 1));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                s.stack.pop();
                if e_in != 0 {
                    s.circuit.push(e_in - 1);
                }
            }
        }
        for (i, &le) in s.circuit.iter().enumerate() {
            let e = ids[le as usize];
            if i % 2 == 0 {
                s.half_a.push(e);
            } else {
                s.half_b.push(e);
            }
        }
    }

    let h = m / 2;
    debug_assert_eq!(s.half_a.len(), h, "odd-degree vertex in Euler split");
    ids[..h].copy_from_slice(&s.half_a);
    ids[h..].copy_from_slice(&s.half_b);
}

/// Split the sub-multigraph formed by `subset` (edge ids into `edges`) into
/// two halves `(a, b)` such that every vertex has exactly half of its
/// `subset`-degree in each half.
///
/// Every vertex must have **even** degree within `subset`; the caller (the
/// coloring recursion) guarantees this. `nodes` is the number of vertices
/// per side.
pub fn euler_split(
    nodes: usize,
    edges: &[(usize, usize)],
    subset: &[usize],
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        2 * edges.len() <= u32::MAX as usize && 2 * nodes <= u32::MAX as usize,
        "graph exceeds u32 index space"
    );
    let mut left_of = vec![0u32; edges.len()];
    let mut right_of = vec![0u32; edges.len()];
    for (e, &(u, v)) in edges.iter().enumerate() {
        left_of[e] = u as u32;
        right_of[e] = v as u32;
    }
    let mut ids: Vec<u32> = subset.iter().map(|&e| e as u32).collect();
    let mut scratch = EulerScratch::default();
    euler_split_in_place(&left_of, &right_of, nodes, &mut ids, &mut scratch);
    let h = ids.len() / 2;
    let a = ids[..h].iter().map(|&e| e as usize).collect();
    let b = ids[h..].iter().map(|&e| e as usize).collect();
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Degree of each (side, node) within a subset of edge ids.
    fn degrees(
        nodes: usize,
        edges: &[(usize, usize)],
        subset: &[usize],
    ) -> (Vec<usize>, Vec<usize>) {
        let mut l = vec![0usize; nodes];
        let mut r = vec![0usize; nodes];
        for &e in subset {
            l[edges[e].0] += 1;
            r[edges[e].1] += 1;
        }
        (l, r)
    }

    fn check_split(nodes: usize, edges: &[(usize, usize)]) {
        let all: Vec<usize> = (0..edges.len()).collect();
        let (l0, r0) = degrees(nodes, edges, &all);
        let (a, b) = euler_split(nodes, edges, &all);
        assert_eq!(a.len() + b.len(), edges.len());
        let mut seen = vec![false; edges.len()];
        for &e in a.iter().chain(&b) {
            assert!(!seen[e], "edge {e} assigned twice");
            seen[e] = true;
        }
        let (la, ra) = degrees(nodes, edges, &a);
        let (lb, rb) = degrees(nodes, edges, &b);
        for v in 0..nodes {
            assert_eq!(la[v], l0[v] / 2, "left {v} uneven");
            assert_eq!(lb[v], l0[v] / 2);
            assert_eq!(ra[v], r0[v] / 2, "right {v} uneven");
            assert_eq!(rb[v], r0[v] / 2);
        }
    }

    #[test]
    fn splits_double_cover_of_matching() {
        // Degree 2: each node has the same two parallel edges.
        check_split(3, &[(0, 1), (0, 1), (1, 2), (1, 2), (2, 0), (2, 0)]);
    }

    #[test]
    fn splits_complete_bipartite_k22() {
        check_split(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn splits_complete_bipartite_k44() {
        let mut edges = Vec::new();
        for u in 0..4 {
            for v in 0..4 {
                edges.push((u, v));
            }
        }
        check_split(4, &edges);
    }

    #[test]
    fn splits_disconnected_components() {
        // Two disjoint 2-cycles.
        check_split(
            4,
            &[
                (0, 0),
                (0, 0),
                (1, 1),
                (1, 1),
                (2, 3),
                (2, 3),
                (3, 2),
                (3, 2),
            ],
        );
    }

    #[test]
    fn splits_subset_only() {
        // Full graph has odd degree, but the chosen subset has even degree.
        let edges = vec![(0, 0), (0, 1), (1, 0), (1, 1), (0, 0), (1, 1)];
        let subset = vec![0, 1, 2, 3]; // K22, degree 2
        let (a, b) = euler_split(2, &edges, &subset);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        for &e in a.iter().chain(&b) {
            assert!(subset.contains(&e));
        }
    }

    #[test]
    fn splits_random_regular_multigraph() {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        // Build a random 8-regular bipartite multigraph on 16+16 nodes as a
        // union of 8 random perfect matchings.
        let mut rng = StdRng::seed_from_u64(3);
        let nodes = 16;
        let mut edges = Vec::new();
        for _ in 0..8 {
            let mut rights: Vec<usize> = (0..nodes).collect();
            rights.shuffle(&mut rng);
            for (u, &v) in rights.iter().enumerate() {
                edges.push((u, v));
            }
        }
        check_split(nodes, &edges);
    }

    #[test]
    fn empty_subset_yields_empty_halves() {
        let (a, b) = euler_split(2, &[(0, 0), (1, 1)], &[]);
        assert!(a.is_empty());
        assert!(b.is_empty());
    }

    #[test]
    fn scratch_reuse_across_calls_is_clean() {
        // The same scratch must give correct results for a big split
        // followed by a smaller one (stale capacity must not leak).
        let edges_a: Vec<(usize, usize)> =
            (0..4).flat_map(|u| (0..4).map(move |v| (u, v))).collect();
        let edges_b = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
        let mut scratch = EulerScratch::default();
        for (nodes, edges) in [(4usize, &edges_a), (2usize, &edges_b)] {
            let mut left_of = vec![0u32; edges.len()];
            let mut right_of = vec![0u32; edges.len()];
            for (e, &(u, v)) in edges.iter().enumerate() {
                left_of[e] = u as u32;
                right_of[e] = v as u32;
            }
            let mut ids: Vec<u32> = (0..edges.len() as u32).collect();
            euler_split_in_place(&left_of, &right_of, nodes, &mut ids, &mut scratch);
            let subset: Vec<usize> = ids.iter().map(|&e| e as usize).collect();
            let h = subset.len() / 2;
            let (la, _) = degrees(nodes, edges, &subset[..h]);
            let (lb, _) = degrees(nodes, edges, &subset[h..]);
            for v in 0..nodes {
                assert_eq!(la[v], lb[v], "node {v} uneven after reuse");
            }
        }
    }
}
