//! Determinism of the parallel plan-compiler coloring: for any regular
//! bipartite multigraph and any thread budget, [`edge_color_par`] must
//! produce **exactly** the coloring of the sequential [`edge_color_with`].
//! This is the property `hmm-plan` relies on for byte-identical plan
//! output, so it is pinned here over randomized graphs, both strategies,
//! and budgets beyond the host's core count.

use hmm_graph::{
    edge_color_par, edge_color_with, verify_coloring, Parallelism, RegularBipartite, Strategy,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Union of `deg` random perfect matchings: a `deg`-regular bipartite
/// multigraph with parallel edges possible. A second knob (`clustered`)
/// wires each matching within blocks of 4 nodes instead, which produces
/// many small connected components and exercises the per-component
/// fan-out + local vertex relabeling.
fn random_regular(nodes: usize, deg: usize, clustered: bool, seed: u64) -> RegularBipartite {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(nodes * deg);
    let block = if clustered { 4.min(nodes) } else { nodes };
    for _ in 0..deg {
        let mut start = 0;
        while start < nodes {
            let end = (start + block).min(nodes);
            let mut rights: Vec<usize> = (start..end).collect();
            rights.shuffle(&mut rng);
            for (i, &v) in rights.iter().enumerate() {
                edges.push((start + i, v));
            }
            start = end;
        }
    }
    RegularBipartite::new(nodes, edges).unwrap()
}

mod properties {
    use super::*;
    use proptest::prelude::*;
    // The proptest prelude also globs a `Strategy` trait; ours wins.
    use hmm_graph::Strategy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Hybrid coloring: parallel == sequential, bit for bit, at any
        /// thread budget — even/odd degrees, connected and clustered.
        #[test]
        fn hybrid_parallel_equals_sequential(
            nodes_exp in 2u32..=6,
            deg in 1usize..=17,
            clustered in 0u8..2,
            threads in 2usize..=9,
            seed in any::<u64>(),
        ) {
            let nodes = 1usize << nodes_exp;
            let g = random_regular(nodes, deg, clustered == 1, seed);
            let seq = edge_color_with(&g, Strategy::Hybrid).unwrap();
            prop_assert!(verify_coloring(&g, &seq));
            let par = edge_color_par(&g, Strategy::Hybrid, Parallelism::threads(threads)).unwrap();
            prop_assert_eq!(par, seq);
        }

        /// The matching-only baseline obeys the same contract (its
        /// parallelism is per-component only).
        #[test]
        fn matching_only_parallel_equals_sequential(
            nodes in 4usize..=24,
            deg in 1usize..=8,
            clustered in 0u8..2,
            threads in 2usize..=6,
            seed in any::<u64>(),
        ) {
            let g = random_regular(nodes, deg, clustered == 1, seed);
            let seq = edge_color_with(&g, Strategy::MatchingOnly).unwrap();
            prop_assert!(verify_coloring(&g, &seq));
            let par =
                edge_color_par(&g, Strategy::MatchingOnly, Parallelism::threads(threads)).unwrap();
            prop_assert_eq!(par, seq);
        }
    }
}

/// One deterministic large case that actually crosses the fork threshold
/// (8K edges), so the scoped-thread path is exercised even when the
/// proptest cases stay small.
#[test]
fn hybrid_parallel_equals_sequential_above_fork_threshold() {
    let g = random_regular(1024, 32, false, 7); // 32768 edges
    let seq = edge_color_with(&g, Strategy::Hybrid).unwrap();
    for t in [2, 4, 8] {
        let par = edge_color_par(&g, Strategy::Hybrid, Parallelism::threads(t)).unwrap();
        assert_eq!(par, seq, "threads {t}");
    }
    assert!(verify_coloring(&g, &seq));
}
