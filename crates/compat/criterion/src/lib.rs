//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The workspace's benches use benchmark groups with throughput
//! annotations, `bench_function` / `bench_with_input`, and the
//! `criterion_group!` / `criterion_main!` macros. This crate implements
//! that surface as a small real measurement harness (warmup, N timed
//! samples, median/mean/min report with optional elements-per-second
//! throughput), so `cargo bench` runs with no network access (see
//! DESIGN.md §6).
//!
//! Statistical machinery (outlier classification, HTML reports, baselines)
//! is intentionally absent. A `--filter` substring passed on the command
//! line (as cargo-bench forwards extra args) restricts which benchmark ids
//! run; all other flags are accepted and ignored.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("gather", n)` → id `gather/n`.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warmup: usize,
}

impl Bencher {
    /// Time `sample_size` samples of `f` (after warmup), one call each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

/// One measured benchmark, as recorded by the harness.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full id (`group/function/param`).
    pub id: String,
    /// Median sample time.
    pub median: Duration,
    /// Mean sample time.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Group throughput annotation, if any.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Elements (or bytes) per second at the median sample, if annotated.
    pub fn per_second(&self) -> Option<f64> {
        let units = match self.throughput? {
            Throughput::Elements(e) => e,
            Throughput::Bytes(b) => b,
        };
        let secs = self.median.as_secs_f64();
        (secs > 0.0).then(|| units as f64 / secs)
    }
}

fn human_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.3} G/s", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K/s", rate / 1e3)
    } else {
        format!("{rate:.3} /s")
    }
}

/// The harness: collects measurements and prints a per-benchmark line.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    /// Reads a filter substring from the command line (first free
    /// argument), as cargo-bench forwards it.
    fn default() -> Self {
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                // Flags cargo/criterion pass that we accept and ignore.
                "--bench" | "--test" | "--nocapture" | "--quiet" | "--verbose" => {}
                "--sample-size" | "--measurement-time" | "--warm-up-time" | "--save-baseline"
                | "--baseline" | "--load-baseline" => {
                    let _ = args.next();
                }
                other if other.starts_with("--") => {}
                free => {
                    filter.get_or_insert_with(|| free.to_string());
                }
            }
        }
        Criterion {
            filter,
            default_sample_size: 10,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Top-level `bench_function` (no group).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let sample_size = self.default_sample_size;
        self.run_one(id, None, sample_size, f);
        self
    }

    /// All measurements recorded so far (used by harness-level tests).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    fn run_one<F>(&mut self, id: String, throughput: Option<Throughput>, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
            warmup: (sample_size / 5).max(1),
        };
        f(&mut b);
        if b.samples.is_empty() {
            // Closure never called `iter`; nothing to report.
            return;
        }
        let mut sorted = b.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let min = sorted[0];
        let m = Measurement {
            id,
            median,
            mean,
            min,
            throughput,
        };
        let mut line = format!(
            "{:<48} median {:>10.2?}  mean {:>10.2?}  min {:>10.2?}",
            m.id, m.median, m.mean, m.min
        );
        if let Some(rate) = m.per_second() {
            let _ = write!(line, "  thrpt {}", human_rate(rate));
        }
        println!("{line}");
        self.measurements.push(m);
    }
}

/// A group of related benchmarks sharing throughput and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotate the group's per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Accepted for API compatibility; the stub sizes runs by sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        let (t, s) = (
            self.throughput,
            self.sample_size
                .unwrap_or(self.criterion.default_sample_size),
        );
        self.criterion.run_one(id, t, s, f);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        let (t, s) = (
            self.throughput,
            self.sample_size
                .unwrap_or(self.criterion.default_sample_size),
        );
        self.criterion.run_one(id, t, s, |b| f(b, input));
        self
    }

    /// End the group (prints nothing; measurements are already reported).
    pub fn finish(&mut self) {}
}

/// Define a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_measure_and_report_throughput() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 5,
            measurements: Vec::new(),
        };
        {
            let mut g = c.benchmark_group("demo");
            g.throughput(Throughput::Elements(1000));
            g.sample_size(5);
            g.bench_function("sum", |b| {
                b.iter(|| (0..1000u64).sum::<u64>())
            });
            g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
                b.iter(|| (0..1000u64).map(|v| v * k).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.measurements().len(), 2);
        assert_eq!(c.measurements()[0].id, "demo/sum");
        assert_eq!(c.measurements()[1].id, "demo/scaled/4");
        assert!(c.measurements()[0].per_second().unwrap() > 0.0);
        assert!(c.measurements()[0].min <= c.measurements()[0].median);
    }

    #[test]
    fn filter_skips_nonmatching_ids() {
        let mut c = Criterion {
            filter: Some("wanted".into()),
            default_sample_size: 3,
            measurements: Vec::new(),
        };
        c.bench_function("unwanted", |b| b.iter(|| 1 + 1));
        c.bench_function("wanted", |b| b.iter(|| 1 + 1));
        assert_eq!(c.measurements().len(), 1);
        assert_eq!(c.measurements()[0].id, "wanted");
    }

    #[test]
    fn empty_bencher_is_skipped() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 3,
            measurements: Vec::new(),
        };
        c.bench_function("noop", |_b| {});
        assert!(c.measurements().is_empty());
    }
}
