//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The reproduction's property tests (`tests/properties.rs`,
//! `tests/model_properties.rs`) use a narrow slice of proptest: the
//! [`proptest!`] macro with `pat in strategy` arguments, integer range and
//! [`any`] strategies, tuple composition, [`Strategy::prop_map`], and the
//! `prop_assert*` macros. This crate implements exactly that slice on the
//! workspace's vendored [`rand`] stub, so the suite runs with no network
//! access (see DESIGN.md §6).
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs in the assertion message), and the case count defaults
//! to 64 instead of 256. Both tests in this repository set explicit case
//! counts via `ProptestConfig::with_cases`.

#![warn(missing_docs)]

/// Strategy combinators and the [`Strategy`] trait.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A generator of values of one type — the (shrink-free) core of
    /// proptest's `Strategy`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for "any value of `T`" — see [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(rng)
        }
    }

    /// `Just(v)`: always generates a clone of `v`.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit: f64 = rng.gen();
            self.start + unit * (self.end - self.start)
        }
    }
}

/// `any::<T>()` and friends.
pub mod arbitrary {
    use crate::strategy::Any;

    /// Strategy generating any value of `T` uniformly.
    pub fn any<T: rand::Standard>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Subset of proptest's config: the number of generated cases.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The per-test deterministic RNG (seeded from the test's name, so
    /// every property sees a stable stream run-over-run).
    pub type TestRng = rand::rngs::StdRng;

    /// Seed a [`TestRng`] from a test name (FNV-1a over the bytes).
    pub fn rng_for(name: &str) -> TestRng {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property (no shrinking: panics immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Doc comments and attributes pass through.
        #[test]
        fn ranges_and_maps(v in evens(), k in 1usize..=4, seed in any::<u64>()) {
            prop_assert!(v % 2 == 0);
            prop_assert!((1..=4).contains(&k));
            let _ = seed;
        }

        #[test]
        fn tuples_compose(pair in (0u32..10, 0u32..10)) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert_ne!(pair.0 + 10, pair.1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..=255) {
            prop_assert_eq!(x as u16 as u8, x);
        }
    }
}
