//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! This reproduction must build with no network access and no registry
//! cache, so the workspace vendors the few `rand` items it actually uses
//! (see DESIGN.md §6): [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle`/`choose`).
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — deterministic per seed, high-quality for test workloads,
//! and dependency-free. It intentionally does **not** reproduce the exact
//! stream of upstream `rand`'s ChaCha12-based `StdRng`; nothing in this
//! repository pins concrete random values (the golden tests cover only
//! deterministic fixtures).

#![warn(missing_docs)]

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Values producible uniformly from an RNG (the `Standard` distribution of
/// upstream `rand`, flattened into a trait).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (including `&mut R`, so `R: Rng + ?Sized` receivers work
/// exactly as with upstream `rand`).
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Statistically strong, 4×64-bit state, and fully
    /// deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice randomization, as in upstream `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (RngCore::next_u64(rng) % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (RngCore::next_u64(rng) % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data: Vec<usize> = (0..100).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // Overwhelmingly unlikely to be untouched.
        assert_ne!(data, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn unsized_rng_receivers_work() {
        // Mirrors call sites generic over `R: Rng + ?Sized`.
        fn takes_dyn<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            let v: u64 = rng.gen_range(0..100u64);
            v
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!(takes_dyn(&mut rng) < 100);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
        assert!(rng.gen_bool(1.0) || true);
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(6);
        let data = [1u8, 2, 3];
        assert!(data.contains(data.as_slice().choose(&mut rng).unwrap()));
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
