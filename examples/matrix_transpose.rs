//! Matrix transpose on the simulated HMM: the diagonal-arrangement kernel
//! (Section V) against the conventional scatter, with a full round audit.
//!
//! Transpose is both a building block of the scheduled algorithm and the
//! worst-case permutation for the conventional one (distribution exactly
//! `w`), so this example shows the paper's effect in its purest form.
//!
//! ```text
//! cargo run --release -p hmm-bench --example matrix_transpose
//! ```

use hmm_machine::{Hmm, MachineConfig, Word};
use hmm_offperm::conventional::{d_designated, stage_destination_map};
use hmm_offperm::transpose::transpose;
use hmm_perm::{distribution, families, MatrixShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 512;
    let shape = MatrixShape::new(side, side)?;
    let n = shape.len();
    let cfg = MachineConfig::pure(32, 512);
    println!("transposing a {side}x{side} matrix ({n} elements) on the pure HMM (w=32, l=512)\n");

    let data: Vec<Word> = (0..n as Word).collect();
    let p = families::transpose(side, side, n)?;
    println!(
        "transpose distribution γ_w(P) = {} (the maximum, w)",
        distribution(&p, cfg.width)
    );

    // Conventional scatter.
    let mut hmm = Hmm::new(cfg.clone())?;
    let a = hmm.alloc_global(n);
    let b = hmm.alloc_global(n);
    hmm.host_write(a, &data)?;
    let pb = stage_destination_map(&mut hmm, &p)?;
    let conv = d_designated(&mut hmm, a, b, pb)?;
    let conv_out = hmm.host_read(b);

    // The diagonal-arrangement transpose kernel.
    let mut hmm = Hmm::new(cfg)?;
    let a = hmm.alloc_global(n);
    let b = hmm.alloc_global(n);
    hmm.host_write(a, &data)?;
    let fast = transpose(&mut hmm, shape, a, b)?;
    let fast_out = hmm.host_read(b);

    assert_eq!(conv_out, fast_out, "kernels disagree");
    let mut want = vec![0; n];
    p.permute(&data, &mut want)?;
    assert_eq!(fast_out, want, "transpose is wrong");

    println!(
        "\nconventional scatter   (3 rounds): {:>9} time units",
        conv.time
    );
    print!("{}", conv.summary);
    println!(
        "\n\ndiagonal-tile transpose (4 rounds): {:>9} time units",
        fast.time
    );
    print!("{}", fast.summary);
    println!(
        "\n\nspeedup: {:.1}x — four perfectly-behaved rounds beat three rounds with a\n\
         casual scatter, exactly the trade the scheduled permutation generalizes.",
        conv.time as f64 / fast.time as f64
    );
    Ok(())
}
