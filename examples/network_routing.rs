//! Permutations as network traffic: why "casual" access costs what it
//! costs.
//!
//! The paper's machines move memory requests through "a multistage
//! interconnection network" (its MMU reference), and its introduction
//! motivates offline permutation with processor-network emulation. This
//! example puts numbers to both:
//!
//! 1. an **Omega network** — how few permutations route without blocking
//!    (the structural reason a casual round serializes), and
//! 2. a **hypercube** — how the adversarial bit-transpose congests
//!    deterministic routing and how Valiant's random intermediates (or an
//!    offline schedule, the paper's approach) flatten it.
//!
//! ```text
//! cargo run --release -p hmm-bench --example network_routing
//! ```

use hmm_apps::{Hypercube, OmegaNetwork};
use hmm_perm::families;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("--- Omega (shuffle-exchange) network: one-pass routability ---\n");
    println!(
        "{:>6} {:>10} {:>22}",
        "n", "stages", "random perms routable"
    );
    for k in [2usize, 3, 4, 5, 6] {
        let n = 1 << k;
        let net = OmegaNetwork::new(n)?;
        let frac = net.random_routability(300, 42);
        println!("{:>6} {:>10} {:>21.1}%", n, net.stages(), frac * 100.0);
    }
    let net = OmegaNetwork::new(64)?;
    for (name, p) in [
        ("identity", families::identical(64)),
        ("rotation+1", families::rotation(64, 1)),
        ("bit-reversal", families::bit_reversal(64)?),
        ("random", families::random(64, 1)),
    ] {
        let verdict = match net.route_permutation(&p) {
            Ok(_) => "routes in one pass".to_string(),
            Err(b) => format!("BLOCKS at stage {} switch {}", b.stage, b.switch),
        };
        println!("  {name:<13} {verdict}");
    }

    println!("\n--- Hypercube (d = 10, n = 1024): per-link congestion ---\n");
    let h = Hypercube::new(10);
    let mut rng = StdRng::seed_from_u64(7);
    println!(
        "{:<22} {:>10} {:>12} {:>12}",
        "permutation", "max load", "mean load", "total hops"
    );
    let show = |name: &str, c: hmm_apps::Congestion| {
        println!(
            "{:<22} {:>10} {:>12.2} {:>12}",
            name, c.max, c.mean, c.total_hops
        );
    };
    show(
        "identity (e-cube)",
        h.route_ecube(&families::identical(1024)),
    );
    show(
        "bit-complement (e-cube)",
        h.route_ecube(&h.bit_complement()),
    );
    show("random (e-cube)", h.route_ecube(&families::random(1024, 3)));
    show("bit-transpose (e-cube)", h.route_ecube(&h.bit_transpose()));
    show(
        "bit-transpose (Valiant)",
        h.route_valiant(&h.bit_transpose(), &mut rng),
    );
    println!(
        "\nThe transpose funnels sqrt(n) packets through shared nodes under\n\
         deterministic routing; randomized (or offline-scheduled) routing pays\n\
         ~2x the hops to eliminate the hot spot — the same trade the paper's\n\
         scheduled permutation makes with its 32 perfectly-behaved rounds."
    );
    Ok(())
}
