//! Quickstart: permute an array three ways on the simulated HMM and
//! compare the model costs.
//!
//! ```text
//! cargo run --release -p hmm-bench --example quickstart
//! ```

use hmm_machine::{ElemWidth, MachineConfig};
use hmm_offperm::driver::{run_permutation, Algorithm};
use hmm_perm::{distribution, families};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 256K elements moved along the bit-reversal permutation — the FFT
    // reordering the paper uses as its headline workload, at the size
    // where the paper first sees the scheduled algorithm win.
    let n = 1 << 18;
    let p = families::bit_reversal(n)?;
    let input: Vec<u64> = (0..n as u64).collect();

    // The GTX-680-flavoured empirical machine (width 32, latency 512,
    // 512 KB L2 model).
    let cfg = MachineConfig::gtx680(ElemWidth::F32);
    println!("n = {n}, width = {}, latency = {}", cfg.width, cfg.latency);
    println!(
        "distribution γ_w(P) = {:.2} (max is w = {})\n",
        distribution(&p, cfg.width),
        cfg.width
    );

    for alg in Algorithm::ALL {
        let outcome = run_permutation(&cfg, alg, &p, &input)?;
        assert!(outcome.verified, "{} produced a wrong answer", alg.name());
        println!(
            "{:<14} {:>10} time units in {:>2} rounds ({} launches)",
            alg.name(),
            outcome.report.time,
            outcome.report.rounds(),
            outcome.report.launches,
        );
    }

    println!(
        "\nThe scheduled algorithm does 32 rounds instead of 3, yet its rounds are\n\
         all coalesced/conflict-free, so for high-distribution permutations it\n\
         beats the conventional one — the paper's headline result."
    );
    Ok(())
}
