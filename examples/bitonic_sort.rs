//! Batcher's bitonic sorting network driven by the library's permutation
//! machinery — sorting networks are one of the paper's motivating
//! applications ("Sorting networks such as bitonic sorting also involve
//! permutation in each stage", Section I).
//!
//! Every compare-exchange stage needs each element's network partner
//! `i XOR j`; the example materializes the partner array with the
//! `butterfly` permutation family applied by the parallel gather backend,
//! then performs the compare-exchanges elementwise.
//!
//! ```text
//! cargo run --release -p hmm-bench --example bitonic_sort
//! ```

use hmm_native::gather_permute;
use hmm_perm::families;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One bitonic compare-exchange stage: merge size `k`, partner distance
/// `j = 1 << stage`.
fn stage(data: &mut [u32], partners: &mut Vec<u32>, k: usize, stage_bit: u32) {
    let n = data.len();
    // partner[i] = data[i ^ (1 << stage_bit)]: a butterfly permutation is
    // its own inverse, so gather with it directly.
    let butterfly = families::butterfly(n, stage_bit).expect("power-of-two n");
    partners.resize(n, 0);
    gather_permute(data, &butterfly, partners);
    let j = 1usize << stage_bit;
    for i in 0..n {
        let ascending = i & k == 0;
        let (a, b) = (data[i], partners[i]);
        // The lower index keeps min when ascending; XOR-partnering makes
        // both sides of the pair compute consistent results.
        data[i] = if (i & j == 0) == ascending {
            a.min(b)
        } else {
            a.max(b)
        };
    }
}

/// Full bitonic sort of a power-of-two-sized slice.
fn bitonic_sort(data: &mut [u32]) {
    let n = data.len();
    assert!(n.is_power_of_two());
    let mut partners = Vec::with_capacity(n);
    let mut k = 2usize;
    while k <= n {
        let mut sb = (k.trailing_zeros() - 1) as i32;
        while sb >= 0 {
            stage(data, &mut partners, k, sb as u32);
            sb -= 1;
        }
        k <<= 1;
    }
}

fn main() {
    let n: usize = 1 << 16;
    let mut rng = StdRng::seed_from_u64(2013);
    let mut data: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
    let mut expect = data.clone();

    println!("bitonic sort of {n} random u32 via butterfly permutations");
    let t = Instant::now();
    bitonic_sort(&mut data);
    let elapsed = t.elapsed();
    expect.sort_unstable();
    assert_eq!(data, expect, "network produced an unsorted result");

    let stages: usize = {
        let log = n.trailing_zeros() as usize;
        log * (log + 1) / 2
    };
    println!("sorted correctly in {elapsed:.2?} ({stages} compare-exchange stages)");
    println!("(each stage's partner fetch is one butterfly permutation of the whole array)");
}
