//! Sweep the array size to find the crossover where the scheduled
//! permutation starts beating the conventional one — the paper's central
//! empirical observation ("our scheduled permutation algorithm runs faster
//! than the conventional algorithm whenever n ≥ 256K"), which Section VIII
//! attributes to the GPU's 512 KB L2 cache.
//!
//! The example runs the sweep twice: with the L2 model enabled (the
//! crossover appears at the paper's size) and disabled (the pure model's
//! crossover, driven only by the 32-vs-3 round counts).
//!
//! ```text
//! cargo run --release -p hmm-bench --example cache_crossover
//! ```

use hmm_machine::{ElemWidth, Hmm, MachineConfig};
use hmm_offperm::driver::{run_on, Algorithm};
use hmm_perm::families;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sizes: Vec<usize> = (12..=19).map(|k| 1usize << k).collect();
    for cached in [true, false] {
        println!(
            "\n=== {} ===",
            if cached {
                "GTX-680-like machine (512 KB L2 model)"
            } else {
                "same machine, cache model disabled"
            }
        );
        println!(
            "{:>8} {:>14} {:>12} {:>9}  winner",
            "n", "conventional", "scheduled", "ratio"
        );
        let mut crossover: Option<usize> = None;
        for &n in &sizes {
            let p = families::bit_reversal(n)?;
            let input: Vec<u64> = (0..n as u64).collect();
            let mut cfg = MachineConfig::gtx680(ElemWidth::F32);
            if !cached {
                cfg.cache = None;
            }
            let time = |alg| -> Result<u64, Box<dyn std::error::Error>> {
                let mut hmm = Hmm::new(cfg.clone())?;
                Ok(run_on(&mut hmm, alg, &p, &input)?.0.time)
            };
            let conv = time(Algorithm::DDesignated)?;
            let sched = time(Algorithm::Scheduled)?;
            let winner = if sched < conv {
                "scheduled"
            } else {
                "conventional"
            };
            if sched < conv && crossover.is_none() {
                crossover = Some(n);
            }
            println!(
                "{:>8} {:>14} {:>12} {:>8.2}x  {winner}",
                n,
                conv,
                sched,
                conv as f64 / sched as f64
            );
        }
        match crossover {
            Some(n) => println!("crossover at n = {n} ({} KB of float data)", n * 4 / 1024),
            None => println!("no crossover in this range"),
        }
    }
    println!(
        "\nWith the cache on, small arrays' scattered writes hit in L2 (conventional\n\
         wins easily) and large arrays thrash it (scheduled wins ~2x, the paper's\n\
         band); without the cache the two sides are nearly tied at every size.\n\
         The decisive crossover is cache-made — the paper's Section VIII claim."
    );
    Ok(())
}
