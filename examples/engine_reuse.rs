//! Reusing one machine across many permutations with the `Engine` API —
//! and permuting arrays whose sizes the paper's algorithm doesn't natively
//! support (any `n`, via identity-tail padding).
//!
//! This is the shape a downstream user wants: build once, permute many.
//!
//! ```text
//! cargo run --release -p hmm-bench --example engine_reuse
//! ```

use hmm_machine::{ElemWidth, MachineConfig};
use hmm_offperm::driver::{Algorithm, Engine};
use hmm_perm::families;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: one engine, many permutations, no per-run machine rebuild.
    let n = 1 << 14;
    let mut engine = Engine::new(MachineConfig::gtx680(ElemWidth::F32), n)?;
    let input: Vec<u64> = (0..n as u64).collect();

    println!("one engine, five permutations of n = {n}:");
    for fam in families::Family::ALL {
        let p = fam.build(n, 7)?;
        let report = engine.run(Algorithm::Scheduled, &p, &input, true)?;
        assert!(engine.verify(&p, &input)?);
        println!(
            "  {:<14} {:>8} time units, global footprint {:>8} words",
            fam.name(),
            report.time,
            engine.machine().global_len(),
        );
    }
    println!("(footprint is constant: per-run staging is reclaimed between runs)\n");

    // Part 2: arbitrary sizes — the paper assumes n = r·c with both
    // factors multiples of w; the padded form handles anything.
    println!("arbitrary sizes via identity-tail padding:");
    for n in [100usize, 1000, 5000, 100_000] {
        let p = families::random(n, n as u64);
        let input: Vec<u64> = (0..n as u64).collect();
        let mut engine = Engine::new(MachineConfig::pure(32, 512), n)?;
        let report = engine.run(Algorithm::Scheduled, &p, &input, true)?;
        assert!(engine.verify(&p, &input)?);
        let padded = hmm_offperm::PaddedScheduled::padded_len(n, 32);
        println!(
            "  n = {n:>7} -> padded to {padded:>7} ({:>4.0}% overhead), {} time units",
            (padded as f64 / n as f64 - 1.0) * 100.0,
            report.time
        );
    }
    Ok(())
}
