//! An iterative radix-2 FFT whose data reordering is done by the library's
//! bit-reversal permutation — the application the paper cites for
//! bit-reversal (Section IV: "Bit-reversal is used for data reordering in
//! the FFT algorithms").
//!
//! The example computes an FFT two ways — (a) reordering with the
//! wall-clock scheduled permutation backend, (b) reordering with a plain
//! scatter — checks both against a naive O(n²) DFT on a small prefix, and
//! times the reordering step for both strategies.
//!
//! ```text
//! cargo run --release -p hmm-bench --example fft_bit_reversal
//! ```

use hmm_native::{scatter_permute, NativeScheduled};
use hmm_perm::families;
use std::time::Instant;

/// A complex number as a (re, im) pair — enough for a demo FFT.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct C(f64, f64);

impl C {
    fn mul(self, o: C) -> C {
        C(self.0 * o.0 - self.1 * o.1, self.0 * o.1 + self.1 * o.0)
    }
    fn add(self, o: C) -> C {
        C(self.0 + o.0, self.1 + o.1)
    }
    fn sub(self, o: C) -> C {
        C(self.0 - o.0, self.1 - o.1)
    }
}

/// In-place iterative Cooley-Tukey on bit-reversed input.
fn butterflies(data: &mut [C]) {
    let n = data.len();
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = C(ang.cos(), ang.sin());
        for base in (0..n).step_by(len) {
            let mut w = C(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[base + k];
                let v = data[base + k + len / 2].mul(w);
                data[base + k] = u.add(v);
                data[base + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// Naive DFT coefficient `k` (for verification).
fn dft_coeff(input: &[C], k: usize) -> C {
    let n = input.len();
    let mut acc = C(0.0, 0.0);
    for (t, &x) in input.iter().enumerate() {
        let ang = -2.0 * std::f64::consts::PI * (k * t % n) as f64 / n as f64;
        acc = acc.add(x.mul(C(ang.cos(), ang.sin())));
    }
    acc
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1 << 18;
    println!("FFT of n = {n} samples; reordering via the offline bit-reversal permutation\n");

    // A deterministic, structured test signal.
    let signal: Vec<C> = (0..n)
        .map(|t| {
            let x = t as f64 / n as f64;
            C(
                (2.0 * std::f64::consts::PI * 5.0 * x).sin()
                    + 0.5 * (2.0 * std::f64::consts::PI * 50.0 * x).cos(),
                0.0,
            )
        })
        .collect();

    let p = families::bit_reversal(n)?;

    // (a) Reorder with the five-pass scheduled permutation.
    let sched = NativeScheduled::build(&p, 32)?;
    let mut reordered_sched = vec![C::default(); n];
    let t = Instant::now();
    sched.run(&signal, &mut reordered_sched);
    let t_sched = t.elapsed();

    // (b) Reorder with a direct parallel scatter.
    let mut reordered_scatter = vec![C::default(); n];
    let t = Instant::now();
    scatter_permute(&signal, &p, &mut reordered_scatter);
    let t_scatter = t.elapsed();

    assert_eq!(reordered_sched, reordered_scatter);
    println!("reorder (scheduled 5-pass): {t_sched:.2?}");
    println!("reorder (direct scatter):   {t_scatter:.2?}");

    // Finish the FFT on the reordered data and verify a few bins against
    // the naive DFT.
    let mut spectrum = reordered_sched;
    butterflies(&mut spectrum);
    for k in [0usize, 1, 5, 50, 51] {
        let want = dft_coeff(&signal, k);
        let got = spectrum[k];
        let err = ((got.0 - want.0).powi(2) + (got.1 - want.1).powi(2)).sqrt();
        assert!(err < 1e-6 * n as f64, "bin {k}: {got:?} vs {want:?}");
    }
    println!("\nFFT verified against naive DFT on bins 0, 1, 5, 50, 51.");
    let mag5 = (spectrum[5].0.powi(2) + spectrum[5].1.powi(2)).sqrt() / (n as f64 / 2.0);
    let mag50 = (spectrum[50].0.powi(2) + spectrum[50].1.powi(2)).sqrt() / (n as f64 / 2.0);
    println!("peaks: |X[5]| = {mag5:.3} (expect 1.0), |X[50]| = {mag50:.3} (expect 0.5)");
    Ok(())
}
