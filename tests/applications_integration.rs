//! Cross-crate integration: the application layer runs its permutations
//! through the *simulated HMM* and still computes correct results — the
//! full pipeline the paper envisions (application → offline permutation →
//! GPU kernel), with the simulator standing in for the GPU.

use hmm_apps::{bitonic, Complex, FftPlan};
use hmm_machine::{Hmm, MachineConfig, Word};
use hmm_offperm::driver::{run_on, Algorithm};
use hmm_perm::families;

/// Move `data` along `p` by executing the scheduled permutation on the
/// simulated machine (f64 payloads via bit transmutation).
fn permute_on_hmm(p: &hmm_perm::Permutation, data: &[f64]) -> Vec<f64> {
    let words: Vec<Word> = data.iter().map(|x| x.to_bits()).collect();
    let mut hmm = Hmm::new(MachineConfig::pure(8, 4)).unwrap();
    let (_, out) = run_on(&mut hmm, Algorithm::Scheduled, p, &words).unwrap();
    out.into_iter().map(f64::from_bits).collect()
}

#[test]
fn fft_with_simulated_reordering_matches_naive_dft() {
    let n = 256;
    let plan = FftPlan::new(n).unwrap();
    let signal: Vec<Complex> = (0..n)
        .map(|t| Complex::new((t as f64 * 0.3).sin(), (t as f64 * 0.1).cos()))
        .collect();

    // Reorder re/im planes on the simulated HMM along bit-reversal.
    let p = plan.reorder_permutation();
    let re: Vec<f64> = signal.iter().map(|c| c.re).collect();
    let im: Vec<f64> = signal.iter().map(|c| c.im).collect();
    let re2 = permute_on_hmm(p, &re);
    let im2 = permute_on_hmm(p, &im);
    let mut reordered: Vec<Complex> = re2
        .into_iter()
        .zip(im2)
        .map(|(r, i)| Complex::new(r, i))
        .collect();

    // Complete the FFT on the host: run the full plan on a copy of the
    // original, then compare (the plan reorders internally, so its result
    // on `signal` must equal butterflies applied to our reordered data).
    let mut want = signal.clone();
    plan.forward(&mut want);

    // Butterfly-only pass: reuse the plan by inverting its internal
    // reorder first (bit-reversal is an involution, so reordering twice
    // restores the original, and plan.forward redoes it).
    let mut check = reordered.clone();
    p.permute_in_place(&mut check).unwrap(); // undo our HMM reorder
    plan.forward(&mut check);
    for (k, (a, b)) in check.iter().zip(&want).enumerate() {
        assert!((*a - *b).abs() < 1e-9, "bin {k}");
    }

    // And the HMM reorder itself must equal the host reorder.
    let mut host_reordered = signal.clone();
    p.permute_in_place(&mut host_reordered).unwrap();
    for (k, (a, b)) in reordered.iter_mut().zip(&host_reordered).enumerate() {
        assert!((*a - *b).abs() < 1e-12, "position {k}");
    }
}

#[test]
fn bitonic_partner_fetch_via_simulated_conventional_kernel() {
    // One sorting-network stage: fetch partners with the conventional
    // kernel on the machine (γ_w = 1: it is the right kernel) and perform
    // the compare-exchange on the host.
    let n = 512;
    let data: Vec<Word> = (0..n as Word).map(|v| (v * 2654435761) % 1000).collect();
    let stage = 3u32;
    let butterfly = families::butterfly(n, stage).unwrap();
    let mut hmm = Hmm::new(MachineConfig::pure(8, 4)).unwrap();
    let (report, partners) = run_on(&mut hmm, Algorithm::DDesignated, &butterfly, &data).unwrap();
    // Butterfly is involutive: partners[i] = data[i ^ 2^stage].
    for i in 0..n {
        assert_eq!(partners[i], data[i ^ (1 << stage)]);
    }
    // γ_w = 1: the "casual" write observed coalesced.
    assert_eq!(report.summary.casual_write.rounds, 0);
    assert_eq!(report.summary.coalesced_write.rounds, 1);
}

#[test]
fn full_bitonic_network_agrees_with_std_sort() {
    let n = 1 << 10;
    let net = bitonic(n).unwrap();
    let mut data: Vec<u32> = (0..n as u32).map(|v| v.wrapping_mul(0x9E3779B9)).collect();
    let mut want = data.clone();
    net.apply(&mut data);
    want.sort_unstable();
    assert_eq!(data, want);
}

#[test]
fn omega_verdicts_are_consistent_with_distribution() {
    // Permutations with γ_w = 1 that we route on the omega network:
    // identity and rotations route; the γ_w = w bit-reversal blocks.
    // (Routability and distribution are different lenses on the same
    // serialization phenomenon; this pins their agreement on extremes.)
    let n = 64;
    let net = hmm_apps::OmegaNetwork::new(n).unwrap();
    assert!(net.route_permutation(&families::identical(n)).is_ok());
    assert!(net
        .route_permutation(&families::bit_reversal(n).unwrap())
        .is_err());
}
