//! Integration tests for the native throughput engine: worker pool
//! behaviour through the public API, fused-sweep correctness against the
//! scatter backend (property-tested), the plan cache, and decomposition
//! sharing between the simulator and the native backend.

use hmm_machine::{Hmm, MachineConfig, Word};
use hmm_native::par::{par_chunks_mut, worker_threads};
use hmm_native::{scatter_permute, Engine, NativeScheduled, Route};
use hmm_offperm::driver::run_scheduled_decomposition;
use hmm_offperm::schedule::Decomposition;
use hmm_perm::families::{self, Family};
use hmm_perm::Permutation;
use hmm_plan::PlanIr;
use proptest::prelude::*;

const W: usize = 32;

fn scatter_reference(p: &Permutation, src: &[u32]) -> Vec<u32> {
    let mut out = vec![0u32; src.len()];
    scatter_permute(src, p, &mut out);
    out
}

/// Strategy: any paper family at a power-of-two size 1K..=16K — even
/// exponents give square matrices, odd ones rectangular (r = 2c).
fn family_case() -> impl Strategy<Value = (Permutation, usize)> {
    (0usize..Family::ALL.len(), 10u32..=14, any::<u64>()).prop_map(|(f, k, seed)| {
        let n = 1usize << k;
        (Family::ALL[f].build(n, seed).unwrap(), n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fused_three_sweep_matches_scatter((p, n) in family_case()) {
        let src: Vec<u32> = (0..n as u32).map(|v| v.wrapping_mul(0x9e37_79b9)).collect();
        let sched = NativeScheduled::build(&p, W).unwrap();
        let mut dst = vec![0u32; n];
        let mut scratch = vec![0u32; sched.scratch_len()];
        sched.run_with_scratch(&src, &mut dst, &mut scratch);
        prop_assert_eq!(dst, scatter_reference(&p, &src));
    }

    #[test]
    fn engine_matches_scatter((p, n) in family_case()) {
        let src: Vec<u32> = (0..n as u32).collect();
        let mut engine: Engine<u32> = Engine::new(W);
        let mut dst = vec![0u32; n];
        engine.permute(&p, &src, &mut dst).unwrap();
        prop_assert_eq!(dst, scatter_reference(&p, &src));
    }
}

#[test]
fn fused_matches_scatter_on_rectangular_shapes() {
    // Odd exponents force r != c in the decomposition's matrix shape.
    for k in [11usize, 13, 15] {
        let n = 1 << k;
        let p = families::random(n, k as u64);
        let src: Vec<u32> = (0..n as u32).collect();
        let sched = NativeScheduled::build(&p, W).unwrap();
        assert_ne!(sched.shape().rows, sched.shape().cols, "want rectangular");
        let mut dst = vec![0u32; n];
        sched.run(&src, &mut dst);
        assert_eq!(dst, scatter_reference(&p, &src), "n = {n}");
    }
}

#[test]
fn one_plan_ir_drives_simulator_and_native_identically() {
    let cfg = MachineConfig::pure(8, 16);
    let n = 1 << 10;
    let p = families::random(n, 2013);
    let input: Vec<Word> = (0..n as Word).map(|v| v * 5 + 1).collect();

    // One König coloring, staged twice: the backend-neutral plan IR...
    let ir = PlanIr::build(&p, cfg.width).unwrap();

    // ...drives the simulator through the staging adapter...
    let d = Decomposition::from_ir(&ir);
    let mut hmm = Hmm::new(cfg).unwrap();
    let (_, simulated) = run_scheduled_decomposition(&mut hmm, &d, &input).unwrap();

    // ...and the native backend directly, with no second coloring.
    let native_plan = NativeScheduled::from_plan(&ir).unwrap();
    let mut native_out = vec![0 as Word; n];
    native_plan.run(&input, &mut native_out);

    assert_eq!(simulated, native_out);
    let mut want = vec![0 as Word; n];
    p.permute(&input, &mut want).unwrap();
    assert_eq!(native_out, want);
}

#[test]
fn engine_caches_and_evicts() {
    let n = 1 << 10;
    let src: Vec<u32> = (0..n as u32).collect();
    let mut dst = vec![0u32; n];
    let mut engine: Engine<u32> = Engine::with_capacity(W, 2);
    let perms: Vec<Permutation> = (0..3).map(|s| families::random(n, s)).collect();
    for p in &perms {
        engine.permute(p, &src, &mut dst).unwrap();
    }
    assert_eq!(engine.stats().misses, 3);
    assert_eq!(engine.stats().evictions, 1);
    assert_eq!(engine.cached_plans(), 2);
    // Most-recent plan is still cached.
    engine.permute(&perms[2], &src, &mut dst).unwrap();
    assert_eq!(engine.stats().hits, 1);
    assert_eq!(dst, scatter_reference(&perms[2], &src));
}

#[test]
fn engine_gamma_fallback_picks_scatter_for_coalesced_families() {
    let n = 1 << 12;
    let mut engine: Engine<u32> = Engine::new(W);
    // identical: γ = 1 — one address group per warp, scatter wins.
    let scatter_plan = engine.plan(&families::identical(n)).unwrap();
    assert_eq!(scatter_plan.route(), Route::Scatter);
    // bit-reversal: γ = w — the scheduled algorithm's home turf.
    let sched_plan = engine.plan(&families::bit_reversal(n).unwrap()).unwrap();
    assert_eq!(sched_plan.route(), Route::Scheduled);
}

#[test]
fn engine_batch_applies_one_plan_to_many_arrays() {
    let n = 1 << 11;
    let p = families::random(n, 42);
    let srcs: Vec<Vec<u32>> = (0..3)
        .map(|k| (0..n as u32).map(|v| v.rotate_left(k)).collect())
        .collect();
    let mut dsts = vec![vec![0u32; n]; 3];
    let mut engine: Engine<u32> = Engine::new(W);
    engine
        .permute_batch(
            &p,
            srcs.iter()
                .map(Vec::as_slice)
                .zip(dsts.iter_mut().map(Vec::as_mut_slice)),
        )
        .unwrap();
    assert_eq!(engine.stats().misses, 1);
    for (src, dst) in srcs.iter().zip(&dsts) {
        assert_eq!(dst, &scatter_reference(&p, src));
    }
}

#[test]
fn pool_survives_task_panics_and_keeps_serving() {
    // A panic inside a parallel region must surface on the caller...
    let mut data = vec![0u32; 1 << 20];
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        par_chunks_mut(&mut data, 1, |start, _| {
            if start == 0 {
                panic!("deliberate test panic");
            }
        });
    }));
    assert!(caught.is_err(), "panic must propagate to the caller");

    // ...and the pool (a process-wide singleton) must keep working: run a
    // real permutation end-to-end afterwards.
    let n = 1 << 12;
    let p = families::random(n, 99);
    let src: Vec<u32> = (0..n as u32).collect();
    let mut dst = vec![0u32; n];
    NativeScheduled::build(&p, W).unwrap().run(&src, &mut dst);
    assert_eq!(dst, scatter_reference(&p, &src));
    assert!(worker_threads() >= 1);
}

#[test]
fn repeated_runs_reuse_the_pool() {
    // 50 dispatches through every code path; thread count stays fixed
    // (the pool would OOM or slow to a crawl if it spawned per chunk).
    let threads = worker_threads();
    let n = 1 << 14;
    let p = families::random(n, 7);
    let sched = NativeScheduled::build(&p, W).unwrap();
    let src: Vec<u32> = (0..n as u32).collect();
    let mut dst = vec![0u32; n];
    let mut scratch = vec![0u32; n];
    for _ in 0..50 {
        sched.run_with_scratch(&src, &mut dst, &mut scratch);
    }
    assert_eq!(worker_threads(), threads);
    assert_eq!(dst, scatter_reference(&p, &src));
}
