//! Property-based tests (proptest) over the core invariants: permutation
//! algebra, coloring propriety, schedule correctness, distribution bounds,
//! and cost-model monotonicity.

use hmm_graph::{edge_color, verify_coloring, RegularBipartite};
use hmm_machine::{Hmm, MachineConfig, Word};
use hmm_offperm::driver::{run_permutation, Algorithm};
use hmm_offperm::schedule::Decomposition;
use hmm_perm::{distribution, families, Permutation};
use proptest::prelude::*;

/// Strategy: a random permutation of a power-of-two size 64..=1024,
/// encoded by (log2(n), seed).
fn perm_strategy() -> impl Strategy<Value = Permutation> {
    (6u32..=10, any::<u64>()).prop_map(|(k, seed)| families::random(1 << k, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn permutation_inverse_involutes(p in perm_strategy()) {
        let inv = p.inverse();
        prop_assert_eq!(inv.inverse(), p.clone());
        prop_assert!(p.compose(&inv).is_identity());
    }

    #[test]
    fn permute_then_inverse_is_identity(p in perm_strategy()) {
        let n = p.len();
        let data: Vec<u32> = (0..n as u32).collect();
        let mut moved = vec![0u32; n];
        p.permute(&data, &mut moved).unwrap();
        let mut back = vec![0u32; n];
        p.inverse().permute(&moved, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn in_place_matches_out_of_place(p in perm_strategy()) {
        let n = p.len();
        let data: Vec<u32> = (0..n as u32).collect();
        let mut expect = vec![0u32; n];
        p.permute(&data, &mut expect).unwrap();
        let mut inplace = data;
        p.permute_in_place(&mut inplace).unwrap();
        prop_assert_eq!(inplace, expect);
    }

    #[test]
    fn distribution_within_bounds(p in perm_strategy(), wlog in 2u32..=5) {
        let w = 1usize << wlog;
        let g = distribution(&p, w);
        prop_assert!(g >= 1.0 - 1e-9, "γ = {}", g);
        prop_assert!(g <= w as f64 + 1e-9, "γ = {}", g);
        // Distribution of the identity is always 1.
        prop_assert_eq!(distribution(&families::identical(p.len()), w), 1.0);
    }

    #[test]
    fn coloring_of_random_regular_graph_is_proper(
        nodes in 2usize..=16,
        deg in 1usize..=12,
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::with_capacity(nodes * deg);
        for _ in 0..deg {
            let mut rights: Vec<usize> = (0..nodes).collect();
            rights.shuffle(&mut rng);
            for (u, &v) in rights.iter().enumerate() {
                edges.push((u, v));
            }
        }
        let g = RegularBipartite::new(nodes, edges).unwrap();
        let c = edge_color(&g).unwrap();
        prop_assert_eq!(c.num_colors, deg);
        prop_assert!(verify_coloring(&g, &c));
    }

    #[test]
    fn decomposition_recomposes(p in perm_strategy()) {
        let d = Decomposition::build(&p, 8).unwrap();
        prop_assert_eq!(d.recompose(), p);
    }

    #[test]
    fn scheduled_simulation_is_correct(p in perm_strategy()) {
        let n = p.len();
        let input: Vec<Word> = (0..n as Word).collect();
        let cfg = MachineConfig::pure(8, 4);
        let out = run_permutation(&cfg, Algorithm::Scheduled, &p, &input).unwrap();
        prop_assert!(out.verified);
    }

    #[test]
    fn conventional_simulation_is_correct(p in perm_strategy()) {
        let n = p.len();
        let input: Vec<Word> = (0..n as Word).collect();
        let cfg = MachineConfig::pure(8, 4);
        for alg in [Algorithm::DDesignated, Algorithm::SDesignated] {
            let out = run_permutation(&cfg, alg, &p, &input).unwrap();
            prop_assert!(out.verified);
        }
    }

    #[test]
    fn native_backends_agree(p in perm_strategy()) {
        let n = p.len();
        let src: Vec<u32> = (0..n as u32).collect();
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        hmm_native::scatter_permute(&src, &p, &mut a);
        let sched = hmm_native::NativeScheduled::build(&p, 8).unwrap();
        sched.run(&src, &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn coalesced_cost_is_monotone_in_latency(
        l1 in 1usize..1000,
        l2 in 1usize..1000,
    ) {
        let (lo, hi) = (l1.min(l2), l1.max(l2));
        let run = |l: usize| {
            let mut hmm = Hmm::new(MachineConfig::pure(32, l)).unwrap();
            let a = hmm.alloc_global(1024);
            let addrs: Vec<usize> = (0..1024).map(|i| a.addr(i)).collect();
            hmm.launch(1, 1024, |blk| blk.global_read(&addrs).map(|_| ()))
                .unwrap()
                .time
        };
        prop_assert!(run(lo) <= run(hi));
    }

    #[test]
    fn cache_hits_never_exceed_accesses(seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::Rng;
        use rand::SeedableRng;
        let mut cache = hmm_machine::Cache::new(hmm_machine::CacheConfig {
            capacity_bytes: 4096,
            line_bytes: 64,
            ways: 4,
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..500 {
            cache.access(rng.gen_range(0..256u64));
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses(), 500);
        prop_assert!(stats.hits <= 500);
        prop_assert!(cache.resident_lines() <= 64);
    }
}

/// Non-proptest sanity companion: the schedule slot invariant on a large
/// random instance (more lanes than proptest sizes reach).
#[test]
fn schedule_slots_conflict_free_large() {
    let p = families::random(1 << 14, 123);
    let (s, d) = hmm_offperm::smallperm::conflict_free_schedule(&p, 32).unwrap();
    for chunk in s.chunks(32).chain(d.chunks(32)) {
        let banks: std::collections::HashSet<usize> =
            chunk.iter().map(|&v| v as usize % 32).collect();
        assert_eq!(banks.len(), 32);
    }
    for t in 0..p.len() {
        assert_eq!(p.apply(s[t] as usize), d[t] as usize);
    }
}
