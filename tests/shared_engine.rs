//! Concurrency stress tests for the shared plan service: one
//! `SharedEngine` hammered from many threads over mixed permutation
//! families, single-flight build dedup proven by the stats, fingerprint
//! collisions injected through the test seam, batch dispatch through
//! the worker pool under external contention, the on-disk tier-2
//! plan store (cold-process reuse, corruption and collision rejection),
//! and the queued submission layer (backpressure without deadlock,
//! worker-side failures resolving handles instead of hanging them,
//! cancellation, and batch/single interleaving).

use hmm_native::pool::WorkerPool;
use hmm_native::{Engine, JobError, SharedEngine};
use hmm_perm::families;
use hmm_perm::Permutation;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

const W: usize = 32;

fn reference(p: &Permutation, src: &[u32]) -> Vec<u32> {
    let mut out = vec![0u32; src.len()];
    p.permute(src, &mut out).unwrap();
    out
}

/// The acceptance stress test: one engine, 8 threads, 5 distinct
/// permutations across both backends, reference-equal output on every
/// thread and every round, and stats that prove single-flight dedup.
#[test]
fn shared_engine_stress_eight_threads_mixed_families() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 20;
    let n = 1 << 12;
    let engine: SharedEngine<u32> = SharedEngine::new(W);
    let perms: Vec<Permutation> = vec![
        families::identical(n),             // γ = 1  -> scatter
        families::shuffle(n).unwrap(),      // low γ  -> scatter
        families::random(n, 1),             // high γ -> scheduled
        families::random(n, 2),             // high γ -> scheduled
        families::bit_reversal(n).unwrap(), // γ = w  -> scheduled
    ];
    let src: Vec<u32> = (0..n as u32).map(|v| v.wrapping_mul(0x9e37_79b9)).collect();
    let refs: Vec<Vec<u32>> = perms.iter().map(|p| reference(p, &src)).collect();

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let engine = &engine;
            let perms = &perms;
            let refs = &refs;
            let src = &src;
            let barrier = &barrier;
            s.spawn(move || {
                let mut dst = vec![0u32; n];
                barrier.wait(); // maximise racing on the cold cache
                for r in 0..ROUNDS {
                    let k = (t + r) % perms.len();
                    engine.permute(&perms[k], src, &mut dst).unwrap();
                    assert_eq!(dst, refs[k], "thread {t} round {r} perm {k}");
                }
            });
        }
    });

    let stats = engine.stats();
    let total = (THREADS * ROUNDS) as u64;
    let distinct = perms.len() as u64;
    // Every call is accounted for exactly once.
    assert_eq!(
        stats.hits + stats.misses + stats.builds_deduped + stats.collisions,
        total
    );
    assert_eq!(stats.scatter_runs + stats.scheduled_runs, total);
    // Real fingerprints: no collisions among these permutations.
    assert_eq!(stats.collisions, 0);
    // Single-flight: each distinct permutation is built exactly once, no
    // matter how many threads raced for it (the acceptance inequality).
    assert_eq!(stats.misses, distinct);
    assert!(stats.misses + stats.collisions <= distinct + stats.builds_deduped);
    assert_eq!(stats.evictions, 0);
    assert_eq!(engine.cached_plans(), perms.len());
}

/// All 8 threads request the *same* uncached permutation simultaneously:
/// exactly one build may happen; everyone else hits or waits (dedups).
#[test]
fn shared_engine_single_flight_under_max_contention() {
    const THREADS: usize = 8;
    let n = 1 << 13;
    let engine: SharedEngine<u32> = SharedEngine::new(W);
    let p = families::random(n, 99);
    let src: Vec<u32> = (0..n as u32).collect();
    let want = reference(&p, &src);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let engine = &engine;
            let p = &p;
            let src = &src;
            let want = &want;
            let barrier = &barrier;
            s.spawn(move || {
                let mut dst = vec![0u32; n];
                barrier.wait();
                engine.permute(p, src, &mut dst).unwrap();
                assert_eq!(&dst, want);
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.misses, 1, "one König coloring for eight threads");
    assert_eq!(stats.hits + stats.builds_deduped, (THREADS - 1) as u64);
    assert_eq!(stats.collisions, 0);
}

/// A forced fingerprint collision through the public test seam: the cache
/// must detect the full-image mismatch, rebuild, return the *correct*
/// output, and count exactly one collision.
#[test]
fn shared_engine_detects_injected_fingerprint_collision() {
    let n = 1 << 11;
    let src: Vec<u32> = (0..n as u32).collect();
    let mut dst = vec![0u32; n];
    let mut engine: SharedEngine<u32> = SharedEngine::new(W);
    engine.set_fingerprint_fn(|_| 0x5eed); // every permutation collides
    let p1 = families::random(n, 7);
    let p2 = families::random(n, 8);

    engine.permute(&p1, &src, &mut dst).unwrap();
    assert_eq!(dst, reference(&p1, &src));
    engine.permute(&p2, &src, &mut dst).unwrap();
    assert_eq!(
        dst,
        reference(&p2, &src),
        "collision must be detected, not silently applied"
    );
    let stats = engine.stats();
    assert_eq!(stats.collisions, 1);
    assert_eq!(stats.misses, 2);
}

/// Same collision injection through the single-threaded `Engine` wrapper.
#[test]
fn engine_wrapper_detects_injected_fingerprint_collision() {
    let n = 1 << 10;
    let src: Vec<u32> = (0..n as u32).collect();
    let mut dst = vec![0u32; n];
    let mut engine: Engine<u32> = Engine::new(W);
    engine.set_fingerprint_fn(|_| 1);
    let p1 = families::random(n, 3);
    let p2 = families::random(n, 4);
    engine.permute(&p1, &src, &mut dst).unwrap();
    engine.permute(&p2, &src, &mut dst).unwrap();
    assert_eq!(dst, reference(&p2, &src));
    assert_eq!(engine.stats().collisions, 1);
    // The replacement is cached: repeating p2 is a verified hit.
    engine.permute(&p2, &src, &mut dst).unwrap();
    assert_eq!(engine.stats().hits, 1);
}

/// `permute_batch` dispatches its jobs across the worker pool; outputs
/// must be reference-equal even when several batches run from different
/// threads against one engine.
#[test]
fn shared_engine_concurrent_batches_are_correct() {
    const THREADS: usize = 4;
    const JOBS: usize = 6;
    let n = 1 << 11;
    let engine: SharedEngine<u32> = SharedEngine::new(W);
    let p = families::random(n, 13);
    let srcs: Vec<Vec<u32>> = (0..JOBS)
        .map(|k| (0..n as u32).map(|v| v.wrapping_add(k as u32)).collect())
        .collect();
    let refs: Vec<Vec<u32>> = srcs.iter().map(|s| reference(&p, s)).collect();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let engine = &engine;
            let p = &p;
            let srcs = &srcs;
            let refs = &refs;
            s.spawn(move || {
                let mut dsts: Vec<Vec<u32>> = vec![vec![0u32; n]; JOBS];
                engine
                    .permute_batch(
                        p,
                        srcs.iter()
                            .map(Vec::as_slice)
                            .zip(dsts.iter_mut().map(Vec::as_mut_slice)),
                    )
                    .unwrap();
                for (dst, want) in dsts.iter().zip(refs) {
                    assert_eq!(dst, want);
                }
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(
        stats.scatter_runs + stats.scheduled_runs,
        (THREADS * JOBS) as u64
    );
}

/// Fresh, empty temp directory for one store test.
fn temp_store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hmm-shared-engine-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The cross-process acceptance path through the public API: an engine
/// with a store builds and persists plans; a *second* engine (standing in
/// for a cold process) serves the same permutations with **zero** König
/// builds, and every output still verifies. Scatter-backed permutations
/// never involve the store.
#[test]
fn cold_engine_with_warm_store_builds_nothing_and_verifies() {
    let n = 1 << 12;
    let dir = temp_store_dir("cold-start");
    let perms = [
        families::random(n, 1),             // scheduled
        families::bit_reversal(n).unwrap(), // scheduled
        families::identical(n),             // scatter: store not involved
    ];
    let src: Vec<u32> = (0..n as u32).map(|v| v.wrapping_mul(0x9e37_79b9)).collect();
    let mut dst = vec![0u32; n];

    let warm: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
    for p in &perms {
        warm.permute(p, &src, &mut dst).unwrap();
        assert_eq!(dst, reference(p, &src));
    }
    let warm_stats = warm.stats();
    assert_eq!(warm_stats.builds, 1, "random is the only König coloring");
    assert_eq!(
        warm_stats.plans_structured, 1,
        "bit-reversal takes the closed-form BMMC path"
    );
    // Both scheduled plans — colored and structured — are persisted.
    assert_eq!(warm.store().unwrap().entries().unwrap().len(), 2);

    let cold: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
    for p in &perms {
        dst.fill(0);
        cold.permute(p, &src, &mut dst).unwrap();
        assert_eq!(dst, reference(p, &src), "store-served output must verify");
    }
    let stats = cold.stats();
    assert_eq!(stats.builds, 0, "warm store: the cold process never colors");
    assert_eq!(stats.store_hits, 2);
    assert_eq!(stats.store_rejects, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A store file renamed onto another permutation's key — the on-disk
/// equivalent of a fingerprint collision. The decoded identity check must
/// reject it, delete the file, and rebuild; output stays correct.
#[test]
fn renamed_store_file_is_rejected_not_trusted() {
    let n = 1 << 12;
    let dir = temp_store_dir("renamed");
    let p1 = families::random(n, 21);
    let p2 = families::random(n, 22);
    let src: Vec<u32> = (0..n as u32).collect();
    let mut dst = vec![0u32; n];

    let first: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
    first.permute(&p1, &src, &mut dst).unwrap();

    // Graft p1's plan file onto p2's store key.
    let p1_file = dir.join(format!("plan-{:016x}-n{n}-w{W}.hmmplan", p1.fingerprint()));
    let p2_file = dir.join(format!("plan-{:016x}-n{n}-w{W}.hmmplan", p2.fingerprint()));
    std::fs::rename(&p1_file, &p2_file).unwrap();

    let second: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
    dst.fill(0);
    second.permute(&p2, &src, &mut dst).unwrap();
    assert_eq!(
        dst,
        reference(&p2, &src),
        "wrong plan must never be applied"
    );
    let stats = second.stats();
    assert_eq!(stats.store_rejects, 1, "the grafted file is rejected");
    assert_eq!(stats.builds, 1, "and p2's plan rebuilt from scratch");
    // The reject deleted the graft and the rebuild re-saved p2's real
    // plan, so a third engine is a clean hit.
    let third: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
    dst.fill(0);
    third.permute(&p2, &src, &mut dst).unwrap();
    assert_eq!(dst, reference(&p2, &src));
    assert_eq!(third.stats().store_hits, 1);
    assert_eq!(third.stats().builds, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent cold start against a warm store: many threads race the
/// single-flight slot, exactly one of them performs the disk load, and
/// nobody colors.
#[test]
fn concurrent_cold_start_loads_from_store_once() {
    const THREADS: usize = 8;
    let n = 1 << 12;
    let dir = temp_store_dir("concurrent");
    let p = families::random(n, 31);
    let src: Vec<u32> = (0..n as u32).collect();
    let want = reference(&p, &src);

    let warm: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
    let mut dst = vec![0u32; n];
    warm.permute(&p, &src, &mut dst).unwrap();

    let cold: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let cold = &cold;
            let p = &p;
            let src = &src;
            let want = &want;
            let barrier = &barrier;
            s.spawn(move || {
                let mut dst = vec![0u32; n];
                barrier.wait();
                cold.permute(p, src, &mut dst).unwrap();
                assert_eq!(&dst, want);
            });
        }
    });
    let stats = cold.stats();
    assert_eq!(stats.builds, 0);
    assert_eq!(
        stats.store_hits, 1,
        "single-flight covers the disk load too"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// WorkerPool under dispatch contention from multiple non-pool threads
/// (the integration-level cousin of the pool's unit test): permutation
/// work dispatched concurrently from several OS threads stays correct.
#[test]
fn worker_pool_serves_concurrent_external_dispatchers() {
    const DISPATCHERS: usize = 5;
    const ROUNDS: usize = 10;
    const TASKS: usize = 128;
    let pool = WorkerPool::new(4);
    let total = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..DISPATCHERS {
            let pool = &pool;
            let total = &total;
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    pool.run(TASKS, |_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), DISPATCHERS * ROUNDS * TASKS);
}

// ---------------------------------------------------------------------------
// Queued submission layer
// ---------------------------------------------------------------------------

/// The queued acceptance stress test: 8 submitter threads hammer one
/// engine through a bounded queue of capacity **4**, so `submit` spends
/// most of its life blocked on backpressure while only 2 drainers make
/// room. The test proves the backpressure path cannot deadlock, every
/// handle resolves, every output is reference-equal, and the queue
/// counters balance exactly.
#[test]
fn queued_stress_eight_submitters_bounded_queue_of_four() {
    const THREADS: usize = 8;
    const JOBS_PER_THREAD: usize = 16;
    let n = 1 << 11;
    let engine: SharedEngine<u32> = SharedEngine::new(W);
    assert!(
        engine.set_queue_config(4, 2),
        "config must land before the queue spins up"
    );
    let perms: Vec<Permutation> = vec![
        families::identical(n),             // scatter
        families::random(n, 41),            // scheduled
        families::bit_reversal(n).unwrap(), // scheduled
    ];
    let src: Vec<u32> = (0..n as u32).map(|v| v.wrapping_mul(0x9e37_79b9)).collect();
    let shared: Arc<[u32]> = src.clone().into();
    let refs: Vec<Vec<u32>> = perms.iter().map(|p| reference(p, &src)).collect();

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let engine = &engine;
            let perms = &perms;
            let refs = &refs;
            let shared = &shared;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait(); // all 8 hit the 4-slot queue at once
                let handles: Vec<_> = (0..JOBS_PER_THREAD)
                    .map(|j| {
                        let k = (t + j) % perms.len();
                        (
                            k,
                            engine.submit(&perms[k], Arc::clone(shared), vec![0u32; n]),
                        )
                    })
                    .collect();
                for (k, h) in handles {
                    let report = h.wait().expect("no job may fail or hang");
                    assert_eq!(report.dst, refs[k], "thread {t} perm {k}");
                }
            });
        }
    });

    let stats = engine.stats();
    let total = (THREADS * JOBS_PER_THREAD) as u64;
    assert_eq!(engine.queue_capacity(), 4);
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed, total);
    assert_eq!(stats.cancelled, 0);
    assert_eq!(stats.submitted, stats.completed + stats.cancelled);
    assert_eq!(stats.queue_depth, 0, "every job was drained");
}

/// A worker-side **panic** during plan resolution (injected through the
/// fingerprint seam) must resolve the handle with
/// [`JobError::Panicked`] — never hang the waiter, never kill the
/// drainer: a job submitted afterwards still fails cleanly too.
#[test]
fn queued_build_panic_resolves_handle_with_error() {
    let n = 1 << 10;
    let mut engine: SharedEngine<u32> = SharedEngine::new(W);
    engine.set_fingerprint_fn(|_| panic!("injected fingerprint panic"));
    let p = families::random(n, 51);
    let src: Vec<u32> = (0..n as u32).collect();

    for round in 0..2 {
        let handle = engine.submit(&p, src.clone(), vec![0u32; n]);
        match handle.wait() {
            Err(JobError::Panicked(msg)) => {
                assert!(
                    msg.contains("injected fingerprint panic"),
                    "round {round}: panic message must survive: {msg}"
                )
            }
            other => panic!("round {round}: expected Panicked, got {other:?}"),
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.completed, 2, "failed jobs still count as completed");
}

/// A worker-side plan **build error** (scheduled backend forced onto an
/// unschedulable n) must resolve the handle with [`JobError::Plan`],
/// not hang — the queued twin of `plan()` returning `Err`.
#[test]
fn queued_build_error_resolves_handle_with_plan_error() {
    let n = 100; // no r·c = 100 with both multiples of W = 32
    let engine: SharedEngine<u32> = SharedEngine::new(W);
    engine.set_gamma_threshold(0.0); // force the scheduled backend
    let p = families::random(n, 61);
    let src: Vec<u32> = (0..n as u32).collect();

    let handle = engine.submit(&p, src, vec![0u32; n]);
    let queued_err = match handle.wait() {
        Err(JobError::Plan(e)) => e,
        other => panic!("expected Plan(_), got {other:?}"),
    };
    // The blocking path fails with the *same* error: the queue adds no
    // new failure mode and hides no existing one.
    let blocking_err = engine.plan(&p).expect_err("n = 100 is unschedulable");
    assert_eq!(queued_err, blocking_err);
}

/// Deterministic cancellation: a slow fingerprint stalls the single
/// drainer on job A, so job B is still queued when we cancel it. B's
/// handle must resolve `Err(Cancelled)` immediately (before A finishes),
/// A must complete normally, and the counters must balance.
#[test]
fn queued_cancel_before_start_resolves_cancelled() {
    let n = 1 << 10;
    let mut engine: SharedEngine<u32> = SharedEngine::new(W);
    engine.set_fingerprint_fn(|p| {
        std::thread::sleep(std::time::Duration::from_millis(200));
        p.as_slice()[0] as u64 ^ p.len() as u64
    });
    assert!(engine.set_queue_config(4, 1), "one drainer, so A blocks B");
    let p = families::random(n, 71);
    let src: Vec<u32> = (0..n as u32).collect();
    let want = reference(&p, &src);

    let a = engine.submit(&p, src.clone(), vec![0u32; n]);
    let b = engine.submit(&p, src.clone(), vec![0u32; n]);
    assert!(b.cancel(), "B has not started: cancellation must win");
    assert!(!b.cancel(), "second cancel reports it lost");
    assert_eq!(b.wait(), Err(JobError::Cancelled));

    assert_eq!(
        a.wait().expect("A unaffected by B's cancellation").dst,
        want
    );
    let stats = engine.stats();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cancelled, 1);
}

/// `submit_batch` members ride the same queue as everyone else's jobs:
/// two batch submitters and one single-job submitter interleave on one
/// engine, and every handle on both sides resolves reference-equal.
#[test]
fn queued_batches_interleave_with_single_submitters() {
    const BATCHERS: usize = 2;
    const BATCH: usize = 8;
    const SINGLES: usize = 24;
    let n = 1 << 11;
    let engine: SharedEngine<u32> = SharedEngine::new(W);
    assert!(engine.set_queue_config(4, 2));
    let p = families::random(n, 81);
    let src: Vec<u32> = (0..n as u32).map(|v| v.wrapping_mul(0x9e37_79b9)).collect();
    let shared: Arc<[u32]> = src.clone().into();
    let want = reference(&p, &src);

    let barrier = Barrier::new(BATCHERS + 1);
    std::thread::scope(|s| {
        for _ in 0..BATCHERS {
            let engine = &engine;
            let p = &p;
            let shared = &shared;
            let want = &want;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                let jobs = (0..BATCH).map(|_| (Arc::clone(shared), vec![0u32; n]));
                for outcome in engine.submit_batch(p, jobs).wait() {
                    assert_eq!(&outcome.expect("batch member failed").dst, want);
                }
            });
        }
        let engine = &engine;
        let p = &p;
        let shared = &shared;
        let want = &want;
        let barrier = &barrier;
        s.spawn(move || {
            barrier.wait();
            let handles: Vec<_> = (0..SINGLES)
                .map(|_| engine.submit(p, Arc::clone(shared), vec![0u32; n]))
                .collect();
            for h in handles {
                assert_eq!(&h.wait().expect("single job failed").dst, want);
            }
        });
    });

    let stats = engine.stats();
    let total = (BATCHERS * BATCH + SINGLES) as u64;
    assert_eq!(
        stats.submitted, total,
        "batch members route through the queue"
    );
    assert_eq!(stats.completed, total);
    assert_eq!(stats.misses, 1, "one König coloring serves all submitters");
}
