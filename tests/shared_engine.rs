//! Concurrency stress tests for the shared plan service: one
//! `SharedEngine` hammered from many threads over mixed permutation
//! families, single-flight build dedup proven by the stats, fingerprint
//! collisions injected through the test seam, and batch dispatch through
//! the worker pool under external contention.

use hmm_native::pool::WorkerPool;
use hmm_native::{Engine, SharedEngine};
use hmm_perm::families;
use hmm_perm::Permutation;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

const W: usize = 32;

fn reference(p: &Permutation, src: &[u32]) -> Vec<u32> {
    let mut out = vec![0u32; src.len()];
    p.permute(src, &mut out).unwrap();
    out
}

/// The acceptance stress test: one engine, 8 threads, 5 distinct
/// permutations across both backends, reference-equal output on every
/// thread and every round, and stats that prove single-flight dedup.
#[test]
fn shared_engine_stress_eight_threads_mixed_families() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 20;
    let n = 1 << 12;
    let engine: SharedEngine<u32> = SharedEngine::new(W);
    let perms: Vec<Permutation> = vec![
        families::identical(n),             // γ = 1  -> scatter
        families::shuffle(n).unwrap(),      // low γ  -> scatter
        families::random(n, 1),             // high γ -> scheduled
        families::random(n, 2),             // high γ -> scheduled
        families::bit_reversal(n).unwrap(), // γ = w  -> scheduled
    ];
    let src: Vec<u32> = (0..n as u32).map(|v| v.wrapping_mul(0x9e37_79b9)).collect();
    let refs: Vec<Vec<u32>> = perms.iter().map(|p| reference(p, &src)).collect();

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let engine = &engine;
            let perms = &perms;
            let refs = &refs;
            let src = &src;
            let barrier = &barrier;
            s.spawn(move || {
                let mut dst = vec![0u32; n];
                barrier.wait(); // maximise racing on the cold cache
                for r in 0..ROUNDS {
                    let k = (t + r) % perms.len();
                    engine.permute(&perms[k], src, &mut dst).unwrap();
                    assert_eq!(dst, refs[k], "thread {t} round {r} perm {k}");
                }
            });
        }
    });

    let stats = engine.stats();
    let total = (THREADS * ROUNDS) as u64;
    let distinct = perms.len() as u64;
    // Every call is accounted for exactly once.
    assert_eq!(
        stats.hits + stats.misses + stats.builds_deduped + stats.collisions,
        total
    );
    assert_eq!(stats.scatter_runs + stats.scheduled_runs, total);
    // Real fingerprints: no collisions among these permutations.
    assert_eq!(stats.collisions, 0);
    // Single-flight: each distinct permutation is built exactly once, no
    // matter how many threads raced for it (the acceptance inequality).
    assert_eq!(stats.misses, distinct);
    assert!(stats.misses + stats.collisions <= distinct + stats.builds_deduped);
    assert_eq!(stats.evictions, 0);
    assert_eq!(engine.cached_plans(), perms.len());
}

/// All 8 threads request the *same* uncached permutation simultaneously:
/// exactly one build may happen; everyone else hits or waits (dedups).
#[test]
fn shared_engine_single_flight_under_max_contention() {
    const THREADS: usize = 8;
    let n = 1 << 13;
    let engine: SharedEngine<u32> = SharedEngine::new(W);
    let p = families::random(n, 99);
    let src: Vec<u32> = (0..n as u32).collect();
    let want = reference(&p, &src);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let engine = &engine;
            let p = &p;
            let src = &src;
            let want = &want;
            let barrier = &barrier;
            s.spawn(move || {
                let mut dst = vec![0u32; n];
                barrier.wait();
                engine.permute(p, src, &mut dst).unwrap();
                assert_eq!(&dst, want);
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.misses, 1, "one König coloring for eight threads");
    assert_eq!(stats.hits + stats.builds_deduped, (THREADS - 1) as u64);
    assert_eq!(stats.collisions, 0);
}

/// A forced fingerprint collision through the public test seam: the cache
/// must detect the full-image mismatch, rebuild, return the *correct*
/// output, and count exactly one collision.
#[test]
fn shared_engine_detects_injected_fingerprint_collision() {
    let n = 1 << 11;
    let src: Vec<u32> = (0..n as u32).collect();
    let mut dst = vec![0u32; n];
    let mut engine: SharedEngine<u32> = SharedEngine::new(W);
    engine.set_fingerprint_fn(|_| 0x5eed); // every permutation collides
    let p1 = families::random(n, 7);
    let p2 = families::random(n, 8);

    engine.permute(&p1, &src, &mut dst).unwrap();
    assert_eq!(dst, reference(&p1, &src));
    engine.permute(&p2, &src, &mut dst).unwrap();
    assert_eq!(
        dst,
        reference(&p2, &src),
        "collision must be detected, not silently applied"
    );
    let stats = engine.stats();
    assert_eq!(stats.collisions, 1);
    assert_eq!(stats.misses, 2);
}

/// Same collision injection through the single-threaded `Engine` wrapper.
#[test]
fn engine_wrapper_detects_injected_fingerprint_collision() {
    let n = 1 << 10;
    let src: Vec<u32> = (0..n as u32).collect();
    let mut dst = vec![0u32; n];
    let mut engine: Engine<u32> = Engine::new(W);
    engine.set_fingerprint_fn(|_| 1);
    let p1 = families::random(n, 3);
    let p2 = families::random(n, 4);
    engine.permute(&p1, &src, &mut dst).unwrap();
    engine.permute(&p2, &src, &mut dst).unwrap();
    assert_eq!(dst, reference(&p2, &src));
    assert_eq!(engine.stats().collisions, 1);
    // The replacement is cached: repeating p2 is a verified hit.
    engine.permute(&p2, &src, &mut dst).unwrap();
    assert_eq!(engine.stats().hits, 1);
}

/// `permute_batch` dispatches its jobs across the worker pool; outputs
/// must be reference-equal even when several batches run from different
/// threads against one engine.
#[test]
fn shared_engine_concurrent_batches_are_correct() {
    const THREADS: usize = 4;
    const JOBS: usize = 6;
    let n = 1 << 11;
    let engine: SharedEngine<u32> = SharedEngine::new(W);
    let p = families::random(n, 13);
    let srcs: Vec<Vec<u32>> = (0..JOBS)
        .map(|k| (0..n as u32).map(|v| v.wrapping_add(k as u32)).collect())
        .collect();
    let refs: Vec<Vec<u32>> = srcs.iter().map(|s| reference(&p, s)).collect();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let engine = &engine;
            let p = &p;
            let srcs = &srcs;
            let refs = &refs;
            s.spawn(move || {
                let mut dsts: Vec<Vec<u32>> = vec![vec![0u32; n]; JOBS];
                engine
                    .permute_batch(
                        p,
                        srcs.iter()
                            .map(Vec::as_slice)
                            .zip(dsts.iter_mut().map(Vec::as_mut_slice)),
                    )
                    .unwrap();
                for (dst, want) in dsts.iter().zip(refs) {
                    assert_eq!(dst, want);
                }
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(
        stats.scatter_runs + stats.scheduled_runs,
        (THREADS * JOBS) as u64
    );
}

/// WorkerPool under dispatch contention from multiple non-pool threads
/// (the integration-level cousin of the pool's unit test): permutation
/// work dispatched concurrently from several OS threads stays correct.
#[test]
fn worker_pool_serves_concurrent_external_dispatchers() {
    const DISPATCHERS: usize = 5;
    const ROUNDS: usize = 10;
    const TASKS: usize = 128;
    let pool = WorkerPool::new(4);
    let total = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..DISPATCHERS {
            let pool = &pool;
            let total = &total;
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    pool.run(TASKS, |_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), DISPATCHERS * ROUNDS * TASKS);
}
