//! Golden-output tests: the harness's figure renderings are part of the
//! deliverable, so pin their exact content (they depend only on fixed
//! inputs and deterministic algorithms).

use hmm_bench::experiments::figures;

#[test]
fn fig3_render_golden() {
    let got = figures::render_fig3(5);
    let want = "\
Figure 3: memory access by warps W0=[7, 5, 15, 0] and W1=[10, 11, 12, 13], w=4, l=5

DMM (banks):
  W0 stage 0: [7, 5, 0]
  W0 stage 1: [15]
  W1 stage 0: [10, 11, 12, 13]
  total stages = 3, time = 7 (= l + 2)

UMM (address groups):
  W0 stage 0: [7, 5]
  W0 stage 1: [15]
  W0 stage 2: [0]
  W1 stage 0: [10, 11]
  W1 stage 1: [12, 13]
  total stages = 5, time = 9 (= l + 4)
";
    assert_eq!(got, want);
}

#[test]
fn fig4_render_golden() {
    let got = figures::render_fig4(4);
    let want = "\
Figure 4: diagonal arrangement of a 4x4 matrix
(cell shows [row,col] of the stored element; banks are columns)
 [0,0] [0,1] [0,2] [0,3]
 [1,3] [1,0] [1,1] [1,2]
 [2,2] [2,3] [2,0] [2,1]
 [3,1] [3,2] [3,3] [3,0]
";
    assert_eq!(got, want);
}

#[test]
fn fig5_render_structure_golden() {
    // The coloring itself may permute colors between algorithm revisions;
    // pin the structure: four classes, each printed as a perfect matching.
    let got = figures::render_fig5();
    let lines: Vec<&str> = got.lines().collect();
    assert_eq!(
        lines[0],
        "Figure 5: a regular bipartite graph with degree 4 painted by 4 colors"
    );
    assert_eq!(lines.len(), 5);
    for (i, line) in lines[1..].iter().enumerate() {
        assert!(line.contains(&format!("color {i}:")));
        assert!(line.contains("perfect matching"));
        // Six pairs per class.
        assert_eq!(line.matches('(').count(), 7, "6 edges + label paren");
    }
}

#[test]
fn table1_render_golden_counts() {
    // Pin the full Table I round-count block (the time columns depend on
    // (n, w, l), asserted exactly elsewhere).
    let rows = hmm_bench::experiments::table1::measure(1 << 10, 8, 16).unwrap();
    let rendered = hmm_bench::experiments::table1::render(&rows);
    for needle in [
        "D-designated permutation           0          1             2             0      0      0",
        "S-designated permutation           1          0             1             1      0      0",
        "Transpose                          0          0             1             1      1      1",
        "Row-wise permutation               0          0             3             1      2      2",
        "Column-wise permutation            0          0             5             3      4      4",
        "Our scheduled permutation          0          0            11             5      8      8",
    ] {
        assert!(
            rendered.contains(needle),
            "missing row {needle:?} in:\n{rendered}"
        );
    }
}
