//! Differential conformance suite for every engine front door.
//!
//! The paper defines offline permutation as `b[P[i]] = a[i]` (equivalently
//! `b[i] = a[P⁻¹[i]]`); this suite pins all three engine entry points —
//! blocking [`SharedEngine::permute`], blocking (queue-routed)
//! [`SharedEngine::permute_batch`], and asynchronous
//! [`SharedEngine::submit`] — against a naive index-loop reference that
//! shares no code with the permutation layer, the plan builder, or the
//! backends. Coverage is the cross product of:
//!
//! * the five paper permutation families — identity, shuffle, transpose,
//!   bit-reversal, random — plus a seeded random invertible BMMC;
//! * n ∈ {1K, 64K, 256K};
//! * every registered backend (`native`, `interp`) × both routes, each
//!   **forced** via [`hmm_native::forced_engine_on`] (γ threshold `0.0` →
//!   scheduled, `∞` → scatter) so the γ decision cannot quietly collapse
//!   the matrix onto one kernel.
//!
//! Every run also asserts the plan actually executed on the forced route
//! and backend, so a regression in the forcing seam itself cannot hide.

use hmm_native::{backend_names, forced_engine_on, Route, SharedEngine};
use hmm_perm::{families, Permutation};
use std::sync::Arc;

const W: usize = 32;

/// n ∈ {1K, 64K, 256K}: all are `r·c` with both factors multiples of
/// `W = 32`, so the scheduled route is constructible at every size.
const SIZES: [usize; 3] = [1 << 10, 1 << 16, 1 << 18];

/// The five paper families at size `n`, plus a random invertible BMMC —
/// structured like the affine families but with dense arbitrary masks,
/// so the recognizer/computed-index path is exercised beyond the paper's
/// sparse bit-matrices.
fn paper_families(n: usize) -> Vec<(&'static str, Permutation)> {
    vec![
        ("identity", families::identical(n)),
        ("shuffle", families::shuffle(n).unwrap()),
        ("transpose", families::transpose_square(n).unwrap()),
        ("bit-reversal", families::bit_reversal(n).unwrap()),
        ("random", families::random(n, 0xc0ffee ^ n as u64)),
        (
            "random-bmmc",
            families::random_bmmc(n, 0xb117 ^ n as u64).unwrap(),
        ),
    ]
}

/// Naive reference: the definition applied with a plain loop,
/// `b[P[i]] = a[i]` — no shared code with any code path under test.
fn naive_reference(p: &Permutation, a: &[u32]) -> Vec<u32> {
    let mut b = vec![0u32; a.len()];
    for (i, &pi) in p.as_slice().iter().enumerate() {
        b[pi] = a[i];
    }
    b
}

/// Input that is not the identity ramp, so index/value confusions show.
fn input(n: usize) -> Vec<u32> {
    (0..n as u32)
        .map(|v| v.wrapping_mul(0x9e37_79b9) ^ 0x5eed)
        .collect()
}

/// Differential check of all three front doors for one (family, n,
/// backend, route) cell, on one shared engine so the plan is built once.
fn check_cell(engine: &SharedEngine<u32>, name: &str, p: &Permutation, route: Route) {
    let n = p.len();
    let src = input(n);
    let want = naive_reference(p, &src);
    let ctx = format!(
        "{name} n={n} backend={} route={route:?}",
        engine.backend_name()
    );

    // The plan must actually execute on the forced backend and route.
    let plan = engine.plan(p).unwrap();
    assert_eq!(plan.route(), route, "{ctx}: forcing seam regressed");
    assert_eq!(
        plan.executable().backend_name(),
        engine.backend_name(),
        "{ctx}: plan prepared off-backend"
    );

    // Front door 1: blocking permute.
    let mut dst = vec![0u32; n];
    engine.permute(p, &src, &mut dst).unwrap();
    assert_eq!(dst, want, "{ctx}: permute diverged from naive reference");

    // Front door 2: blocking permute_batch (queue-routed members).
    let srcs: Vec<Vec<u32>> = (0..3)
        .map(|k| src.iter().map(|v| v.wrapping_add(k)).collect())
        .collect();
    let mut dsts: Vec<Vec<u32>> = vec![vec![0u32; n]; srcs.len()];
    engine
        .permute_batch(
            p,
            srcs.iter()
                .map(Vec::as_slice)
                .zip(dsts.iter_mut().map(Vec::as_mut_slice)),
        )
        .unwrap();
    for (k, (s, d)) in srcs.iter().zip(&dsts).enumerate() {
        assert_eq!(
            d,
            &naive_reference(p, s),
            "{ctx}: permute_batch member {k} diverged"
        );
    }

    // Front door 3: queued submit.
    let shared: Arc<[u32]> = src.clone().into();
    let report = engine
        .submit(p, Arc::clone(&shared), vec![0u32; n])
        .wait()
        .unwrap();
    assert_eq!(report.route, route, "{ctx}: queued job ran off-route");
    assert_eq!(
        report.dst, want,
        "{ctx}: submit diverged from naive reference"
    );
}

/// Full family × size sweep for one (backend name, route) pair.
fn run_route(backend: &str, route: Route) {
    for n in SIZES {
        let engine = forced_engine_on::<u32>(backend, W, route)
            .unwrap_or_else(|| panic!("backend {backend} not registered"));
        for (name, p) in paper_families(n) {
            check_cell(&engine, name, &p, route);
        }
    }
}

/// Scatter route on every registered backend: all five families ×
/// {1K, 64K, 256K} × three front doors against the naive reference.
#[test]
fn conformance_scatter_route_all_backends_all_families_all_sizes() {
    for backend in backend_names() {
        run_route(backend, Route::Scatter);
    }
}

/// Scheduled route, same matrix: γ threshold 0 forces the three-pass
/// König-scheduled plan even for identity/shuffle — executed as the fused
/// sweeps on `native` and as the five-step sweep IR on `interp`.
#[test]
fn conformance_scheduled_route_all_backends_all_families_all_sizes() {
    for backend in backend_names() {
        run_route(backend, Route::Scheduled);
    }
}

/// The γ decision itself (no forcing): whatever route the engine picks,
/// outputs still match the naive reference for every family and size.
#[test]
fn conformance_default_gamma_decision_is_correct() {
    for n in SIZES {
        let engine: SharedEngine<u32> = SharedEngine::new(W);
        for (name, p) in paper_families(n) {
            let src = input(n);
            let want = naive_reference(&p, &src);
            let mut dst = vec![0u32; n];
            engine.permute(&p, &src, &mut dst).unwrap();
            assert_eq!(dst, want, "{name} n={n}: default γ decision diverged");
        }
    }
}
