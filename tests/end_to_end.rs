//! Cross-crate integration: every backend (simulator algorithms, native
//! CPU kernels, host reference) moves the same data to the same places,
//! on pure and cached machines, across families and sizes.

use hmm_machine::{ElemWidth, Hmm, MachineConfig, Word};
use hmm_native::{gather_permute, scatter_permute, NativeScheduled};
use hmm_offperm::driver::{run_on, run_permutation, Algorithm};
use hmm_perm::{families, Permutation};

fn reference(p: &Permutation, input: &[Word]) -> Vec<Word> {
    let mut out = vec![0; input.len()];
    p.permute(input, &mut out).unwrap();
    out
}

#[test]
fn all_backends_agree_on_all_families() {
    let n = 1 << 12;
    let input: Vec<Word> = (0..n as Word).map(|v| v.wrapping_mul(0x9e37)).collect();
    let cfg = MachineConfig::pure(32, 64);
    for fam in families::Family::ALL {
        let p = fam.build(n, 99).unwrap();
        let want = reference(&p, &input);
        // Simulator, all three algorithms.
        for alg in Algorithm::ALL {
            let out = run_permutation(&cfg, alg, &p, &input).unwrap();
            assert!(out.verified, "{} {}", alg.name(), fam.name());
            assert_eq!(out.output, want, "{} {}", alg.name(), fam.name());
        }
        // Native scatter/gather.
        let mut dst = vec![0; n];
        scatter_permute(&input, &p, &mut dst);
        assert_eq!(dst, want, "native scatter {}", fam.name());
        gather_permute(&input, &p.inverse(), &mut dst);
        assert_eq!(dst, want, "native gather {}", fam.name());
        // Native scheduled.
        let sched = NativeScheduled::build(&p, 32).unwrap();
        sched.run(&input, &mut dst);
        assert_eq!(dst, want, "native scheduled {}", fam.name());
    }
}

#[test]
fn cached_machine_costs_differ_but_data_does_not() {
    let n = 1 << 12;
    let input: Vec<Word> = (0..n as Word).collect();
    let p = families::bit_reversal(n).unwrap();
    let pure = run_permutation(
        &MachineConfig::pure(32, 512),
        Algorithm::DDesignated,
        &p,
        &input,
    )
    .unwrap();
    let cached = run_permutation(
        &MachineConfig::gtx680(ElemWidth::F32),
        Algorithm::DDesignated,
        &p,
        &input,
    )
    .unwrap();
    assert_eq!(pure.output, cached.output);
    assert!(pure.verified && cached.verified);
    assert_ne!(
        pure.report.time, cached.report.time,
        "cache model should change the cost"
    );
}

#[test]
fn simulation_is_deterministic() {
    let n = 1 << 12;
    let input: Vec<Word> = (0..n as Word).collect();
    let p = families::random(n, 4);
    let cfg = MachineConfig::gtx680(ElemWidth::F32);
    let runs: Vec<u64> = (0..3)
        .map(|_| {
            run_permutation(&cfg, Algorithm::Scheduled, &p, &input)
                .unwrap()
                .report
                .time
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

#[test]
fn composed_permutations_compose_outputs() {
    // Running P then Q equals running Q∘P.
    let n = 1 << 10;
    let input: Vec<Word> = (0..n as Word).collect();
    let p = families::random(n, 5);
    let q = families::random(n, 6);
    let cfg = MachineConfig::pure(8, 16);
    let after_p = run_permutation(&cfg, Algorithm::Scheduled, &p, &input)
        .unwrap()
        .output;
    let after_pq = run_permutation(&cfg, Algorithm::Scheduled, &q, &after_p)
        .unwrap()
        .output;
    let composed = q.compose(&p);
    let direct = run_permutation(&cfg, Algorithm::Scheduled, &composed, &input)
        .unwrap()
        .output;
    assert_eq!(after_pq, direct);
}

#[test]
fn inverse_permutation_round_trips() {
    let n = 1 << 10;
    let input: Vec<Word> = (0..n as Word).map(|v| v + 7).collect();
    let p = families::random(n, 8);
    let cfg = MachineConfig::pure(8, 16);
    let forward = run_permutation(&cfg, Algorithm::Scheduled, &p, &input)
        .unwrap()
        .output;
    let back = run_permutation(&cfg, Algorithm::Scheduled, &p.inverse(), &forward)
        .unwrap()
        .output;
    assert_eq!(back, input);
}

#[test]
fn one_machine_many_runs_ledger_accumulates() {
    let n = 1 << 10;
    let input: Vec<Word> = (0..n as Word).collect();
    let cfg = MachineConfig::pure(8, 16);
    let mut hmm = Hmm::new(cfg).unwrap();
    let p = families::shuffle(n).unwrap();
    let (r1, _) = run_on(&mut hmm, Algorithm::DDesignated, &p, &input).unwrap();
    let (r2, _) = run_on(&mut hmm, Algorithm::SDesignated, &p, &input).unwrap();
    assert_eq!(
        hmm.ledger().len() as u64,
        r1.rounds() + r2.rounds(),
        "ledger accumulates across runs"
    );
    assert_eq!(hmm.total_time(), r1.time + r2.time);
}

#[test]
fn scheduled_handles_many_sizes() {
    let cfg = MachineConfig::pure(8, 16);
    // Both parities of log2(n), from the minimum w² upwards.
    for n in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let p = families::random(n, n as u64);
        let input: Vec<Word> = (0..n as Word).collect();
        let out = run_permutation(&cfg, Algorithm::Scheduled, &p, &input).unwrap();
        assert!(out.verified, "n = {n}");
    }
}
