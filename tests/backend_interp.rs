//! Interpreter-backend conformance: the sweep-IR interpreter from
//! `hmm-backend` pinned byte-identical against both the naive reference
//! and the native backend, across all five paper families × both element
//! widths (u32, u64).
//!
//! This is the suite that makes the IR trustworthy as a codegen source:
//! [`hmm_backend::SweepIr`]'s five-step unfused program (gather,
//! transpose, gather, transpose, row-permute) is executed literally by
//! [`hmm_backend::InterpBackend`], so any divergence between what the
//! WGSL generator *says* a kernel does and what the plan *means* shows up
//! here as a byte mismatch long before a GPU is involved.

use hmm_backend::{GatherMap, SweepIr};
use hmm_native::{as_native_scheduled, forced_engine_on, InterpBackend, PlanIr, Route};
use hmm_perm::{families, Permutation};

const W: usize = 32;

/// 1K and 256K: the smallest schedulable size at width 32 and one big
/// enough that every step spans many tiles and staging blocks.
const SIZES: [usize; 2] = [1 << 10, 1 << 18];

fn paper_families(n: usize) -> Vec<(&'static str, Permutation)> {
    vec![
        ("identity", families::identical(n)),
        ("shuffle", families::shuffle(n).unwrap()),
        ("transpose", families::transpose_square(n).unwrap()),
        ("bit-reversal", families::bit_reversal(n).unwrap()),
        ("random", families::random(n, 0xfeed ^ n as u64)),
    ]
}

/// Naive reference at any element type: `b[P[i]] = a[i]` with a plain
/// loop, sharing no code with the layers under test.
fn naive_reference<T: Copy + Default>(p: &Permutation, a: &[T]) -> Vec<T> {
    let mut b = vec![T::default(); a.len()];
    for (i, &pi) in p.as_slice().iter().enumerate() {
        b[pi] = a[i];
    }
    b
}

/// One (family, n) cell at element type `T`: interp == naive == native.
fn check_cell<T>(name: &str, p: &Permutation, make: impl Fn(usize) -> T)
where
    T: Copy + Send + Sync + Default + PartialEq + std::fmt::Debug + 'static,
{
    let n = p.len();
    let src: Vec<T> = (0..n).map(make).collect();
    let want = naive_reference(p, &src);

    let interp = forced_engine_on::<T>("interp", W, Route::Scheduled).unwrap();
    let mut via_interp = vec![T::default(); n];
    interp.permute(p, &src, &mut via_interp).unwrap();
    assert_eq!(via_interp, want, "{name} n={n}: interp vs naive");

    let native = forced_engine_on::<T>("native", W, Route::Scheduled).unwrap();
    let mut via_native = vec![T::default(); n];
    native.permute(p, &src, &mut via_native).unwrap();
    assert_eq!(via_interp, via_native, "{name} n={n}: interp vs native");
}

/// All five families × {1K, 256K} at u32 — the paper's element width.
#[test]
fn interp_matches_native_and_naive_u32() {
    for n in SIZES {
        for (name, p) in paper_families(n) {
            check_cell(name, &p, |i| (i as u32).wrapping_mul(2_654_435_761));
        }
    }
}

/// Same matrix at u64 — the width the WGSL generator emits as
/// `vec2<u32>`, so the IR must be width-agnostic.
#[test]
fn interp_matches_native_and_naive_u64() {
    for n in SIZES {
        for (name, p) in paper_families(n) {
            check_cell(name, &p, |i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
    }
}

/// The interpreter's forced-scatter route also matches (its serial
/// scatter is an independent second implementation of the definition).
#[test]
fn interp_scatter_route_matches_naive() {
    let n = 1 << 12;
    for (name, p) in paper_families(n) {
        let src: Vec<u32> = (0..n as u32).map(|v| v ^ 0xabcd).collect();
        let want = naive_reference(&p, &src);
        let engine = forced_engine_on::<u32>("interp", W, Route::Scatter).unwrap();
        let mut dst = vec![0u32; n];
        engine.permute(&p, &src, &mut dst).unwrap();
        assert_eq!(dst, want, "{name}");
        let plan = engine.plan(&p).unwrap();
        assert_eq!(plan.route(), Route::Scatter);
        assert!(as_native_scheduled(&plan).is_none(), "{name}: not native");
    }
}

/// Structural pin of the lowering itself: the sweep IR a prepared interp
/// plan holds has exactly the five-step shape DESIGN §13 documents, and
/// its gather maps are the plan's own (transposed for pass 2).
#[test]
fn lowered_sweep_ir_has_the_documented_shape() {
    let n = 1 << 12;
    let p = families::random(n, 31);
    let ir = PlanIr::build(&p, W).unwrap();
    let lowered = SweepIr::lower(&ir, &hmm_native::KernelConfig::default());
    assert_eq!(lowered.rows() * lowered.cols(), n);
    assert_eq!(lowered.steps().len(), 5);
    assert_eq!(lowered.map(GatherMap::G1).len(), n);
    assert_eq!(lowered.map(GatherMap::G2).len(), n);
    assert_eq!(lowered.map(GatherMap::G3).len(), n);
    // The same lowering is what `InterpBackend::prepare` executes.
    let engine =
        hmm_native::SharedEngine::<u32>::with_backend(W, std::sync::Arc::new(InterpBackend));
    engine.set_gamma_threshold(0.0);
    let plan = engine.plan(&p).unwrap();
    assert_eq!(plan.executable().backend_name(), "interp");
    assert_eq!(plan.scratch_len(), 2 * n, "interp needs two scratch arrays");
}
