//! Shared-memory capacity: the constraint behind the paper's note that the
//! scheduled algorithm could not run for 4M doubles in 48 KB of shared
//! memory per SM (Table II(b) stops at 2M).
//!
//! Our row-wise kernel keeps only the two data arrays `A`/`B` in shared
//! memory (the 16-bit schedules stream to registers), so its footprint is
//! `2 · cols · elem_bytes`; the boundary therefore sits at `cols = 3072`
//! for doubles (`48 KB / 16 B`), i.e. at n = 16M doubles for square
//! shapes — a more frugal layout than the authors' (see EXPERIMENTS.md).
//! These tests pin the footprint arithmetic by shrinking the capacity.

use hmm_machine::{ElemWidth, Hmm, MachineConfig, MachineError, Word};
use hmm_offperm::driver::{run_on, Algorithm};
use hmm_offperm::{OffpermError, ScheduledPermutation};
use hmm_perm::families;

/// Run the scheduled algorithm with an explicit shared capacity; returns
/// whether it was feasible.
fn feasible(n: usize, elem: ElemWidth, shared_bytes: usize) -> bool {
    let cfg = MachineConfig {
        elem,
        shared_bytes,
        ..MachineConfig::pure(32, 8)
    };
    let p = families::random(n, 1);
    let input: Vec<Word> = (0..n as Word).collect();
    let mut hmm = Hmm::new(cfg).unwrap();
    match run_on(&mut hmm, Algorithm::Scheduled, &p, &input) {
        Ok((_, out)) => {
            let mut want = vec![0; n];
            p.permute(&input, &mut want).unwrap();
            assert_eq!(out, want);
            true
        }
        Err(OffpermError::Machine(MachineError::SharedCapacityExceeded { .. })) => false,
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn footprint_boundary_f32() {
    // n = 64K floats -> cols = 256 -> A+B = 2 KB for the row-wise kernel,
    // but the w×w transpose tile needs w²·4 = 4 KB, so that is the
    // binding constraint at this size.
    let n = 1 << 16;
    assert!(feasible(n, ElemWidth::F32, 48 * 1024));
    assert!(feasible(n, ElemWidth::F32, 4 * 1024));
    assert!(!feasible(n, ElemWidth::F32, 4 * 1024 - 1));
}

#[test]
fn footprint_boundary_f64() {
    // Doubles double every footprint: the transpose tile becomes 8 KB.
    let n = 1 << 16;
    assert!(feasible(n, ElemWidth::F64, 48 * 1024));
    assert!(!feasible(n, ElemWidth::F64, 8 * 1024 - 1));
    // The same capacity that fits f32 fails f64 — the mechanism behind the
    // paper's missing Table II(b) cell.
    assert!(feasible(n, ElemWidth::F32, 6 * 1024));
    assert!(!feasible(n, ElemWidth::F64, 6 * 1024));
}

#[test]
fn transpose_tile_also_capacity_checked() {
    // The w x w transpose tile needs w² elements; starve it.
    let cfg = MachineConfig {
        shared_bytes: 32 * 32 * 4 - 1,
        ..MachineConfig::pure(32, 8)
    };
    let n = 1 << 12;
    let p = families::bit_reversal(n).unwrap();
    let input: Vec<Word> = (0..n as Word).collect();
    let mut hmm = Hmm::new(cfg).unwrap();
    let err = run_on(&mut hmm, Algorithm::Scheduled, &p, &input).unwrap_err();
    assert!(matches!(
        err,
        OffpermError::Machine(MachineError::SharedCapacityExceeded { .. })
    ));
}

#[test]
fn conventional_algorithms_need_no_shared_memory() {
    // Even 1 byte of shared memory suffices for the conventional kernels.
    let cfg = MachineConfig {
        shared_bytes: 1,
        ..MachineConfig::pure(32, 8)
    };
    let n = 1 << 12;
    let p = families::bit_reversal(n).unwrap();
    let input: Vec<Word> = (0..n as Word).collect();
    for alg in [Algorithm::DDesignated, Algorithm::SDesignated] {
        let mut hmm = Hmm::new(cfg.clone()).unwrap();
        let (_, out) = run_on(&mut hmm, alg, &p, &input).unwrap();
        let mut want = vec![0; n];
        p.permute(&input, &mut want).unwrap();
        assert_eq!(out, want, "{}", alg.name());
    }
}

#[test]
fn build_does_not_require_capacity_only_run_does() {
    // Schedule construction is host-side: it succeeds regardless of the
    // machine; only staging + running hits the capacity wall.
    let p = families::random(1 << 12, 2);
    let sched = ScheduledPermutation::build(&p, 32).unwrap();
    assert_eq!(sched.len(), 1 << 12);
}

#[test]
fn error_reports_requested_and_capacity() {
    let cfg = MachineConfig {
        shared_bytes: 100,
        ..MachineConfig::pure(32, 8)
    };
    let n = 1 << 12;
    let p = families::random(n, 3);
    let input: Vec<Word> = (0..n as Word).collect();
    let mut hmm = Hmm::new(cfg).unwrap();
    match run_on(&mut hmm, Algorithm::Scheduled, &p, &input) {
        Err(OffpermError::Machine(MachineError::SharedCapacityExceeded {
            requested,
            capacity,
            ..
        })) => {
            assert_eq!(capacity, 100);
            assert!(requested > 0);
        }
        other => panic!("expected capacity error, got {other:?}"),
    }
}
