//! Cross-process conformance: the TCP front door is the *fourth* front
//! door in the differential matrix, and it must be byte-identical to
//! the in-process `SharedEngine` and the naive `b[P[i]] = a[i]`
//! reference — across all five paper families, both element widths,
//! with a real server process on the other side of a real socket.
//!
//! Registered as a `[[test]]` of `hmm-server` (the file lives at the
//! workspace root beside `tests/conformance.rs`) so
//! `CARGO_BIN_EXE_hmm-server` resolves to the actual server binary.
//!
//! The restart leg pins the ROADMAP cold-start story end to end: a
//! server killed and restarted over the same `PlanStore` directory
//! completes every registration with `builds == 0`.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use hmm_native::SharedEngine;
use hmm_perm::{families, Permutation};
use hmm_server::{Client, Elem, PlanHandle};

const W: usize = 32;

/// n ∈ {1K, 64K}: both `r·c` with factors that are multiples of W.
const SIZES: [usize; 2] = [1 << 10, 1 << 16];

/// A real `hmm-server serve` child process, reaped on drop.
struct ServerProc {
    child: Child,
    // Held open so the child's final `DRAINED` line has somewhere to go
    // (dropping the read end would SIGPIPE-panic the child's println).
    stdout: BufReader<std::process::ChildStdout>,
    addr: String,
    drained: bool,
}

impl ServerProc {
    fn spawn(extra: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_hmm-server"))
            .arg("serve")
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn hmm-server");
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut stdout = BufReader::new(stdout);
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read LISTENING line");
        let addr = line
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected server banner: {line:?}"))
            .trim()
            .to_string();
        ServerProc {
            child,
            stdout,
            addr,
            drained: false,
        }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr.as_str()).expect("connect to server process")
    }

    /// Graceful shutdown: DRAIN, confirm the `DRAINED` banner, then
    /// wait for the process to exit 0.
    fn drain_and_wait(mut self) {
        let mut c = self.client();
        c.drain().expect("drain");
        let mut line = String::new();
        self.stdout.read_line(&mut line).expect("read DRAINED line");
        assert_eq!(line.trim(), "DRAINED");
        let status = self.child.wait().expect("wait for server exit");
        assert!(status.success(), "server exited with {status}");
        self.drained = true;
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        if !self.drained {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// The five paper families at size `n`.
fn paper_families(n: usize) -> Vec<(&'static str, Permutation)> {
    vec![
        ("identity", families::identical(n)),
        ("shuffle", families::shuffle(n).unwrap()),
        ("transpose", families::transpose_square(n).unwrap()),
        ("bit-reversal", families::bit_reversal(n).unwrap()),
        ("random", families::random(n, 0xc0ffee ^ n as u64)),
    ]
}

/// Input that is not the identity ramp, so index/value confusions show.
fn input<T: Elem + From<u32>>(n: usize) -> Vec<T> {
    (0..n as u32)
        .map(|v| T::from(v.wrapping_mul(0x9e37_79b9) ^ 0x5eed))
        .collect()
}

/// Naive reference: the paper's definition with a plain loop — no code
/// shared with the permutation layer, the plan builder, the engine, or
/// the wire protocol.
fn naive_reference<T: Elem>(p: &Permutation, a: &[T]) -> Vec<T> {
    let mut b = vec![T::default(); a.len()];
    for (i, &pi) in p.as_slice().iter().enumerate() {
        b[pi] = a[i];
    }
    b
}

/// One cell of the differential matrix: TCP output vs in-process engine
/// output vs naive reference, all byte-identical.
fn check_cell<T: Elem + From<u32>>(
    client: &mut Client,
    engine: &SharedEngine<T>,
    name: &str,
    p: &Permutation,
) {
    let n = p.len();
    let src = input::<T>(n);
    let want = naive_reference(p, &src);

    let mut in_process = vec![T::default(); n];
    engine.permute(p, &src, &mut in_process).unwrap();
    assert_eq!(
        in_process,
        want,
        "{name} n={n} w{}: in-process engine diverges from naive",
        T::WIDTH * 8
    );

    let handle: PlanHandle<T> = client.register(p).unwrap();
    let over_tcp = client.permute(&handle, &src).unwrap();
    assert_eq!(
        over_tcp,
        want,
        "{name} n={n} w{}: TCP front door diverges from naive",
        T::WIDTH * 8
    );
    assert_eq!(
        over_tcp,
        in_process,
        "{name} n={n} w{}: TCP front door diverges from in-process engine",
        T::WIDTH * 8
    );
}

#[test]
fn tcp_front_door_matches_engine_and_naive_across_the_matrix() {
    let server = ServerProc::spawn(&[]);
    let engine_u32: SharedEngine<u32> = SharedEngine::new(W);
    let engine_u64: SharedEngine<u64> = SharedEngine::new(W);
    let mut client = server.client();

    for n in SIZES {
        for (name, p) in paper_families(n) {
            check_cell::<u32>(&mut client, &engine_u32, name, &p);
            check_cell::<u64>(&mut client, &engine_u64, name, &p);
        }
    }
    server.drain_and_wait();
}

#[test]
fn batch_path_matches_naive_over_tcp() {
    let server = ServerProc::spawn(&[]);
    let mut client = server.client();
    let n = 1 << 12;
    let p = families::random(n, 0xfeed);
    let handle = client.register::<u32>(&p).unwrap();

    let srcs: Vec<Vec<u32>> = (0..5)
        .map(|k| (0..n as u32).map(|v| v.wrapping_mul(2 * k + 1)).collect())
        .collect();
    let outs = client.permute_batch(&handle, &srcs).unwrap();
    assert_eq!(outs.len(), srcs.len());
    for (k, (src, out)) in srcs.iter().zip(&outs).enumerate() {
        assert_eq!(out, &naive_reference(&p, src), "batch member {k}");
    }
    server.drain_and_wait();
}

#[test]
fn bmmc_registration_matches_index_registration() {
    let server = ServerProc::spawn(&[]);
    let mut client = server.client();
    let n = 1 << 12;
    let p = families::bit_reversal(n).unwrap();
    let m = p.as_bmmc().expect("bit reversal is affine");

    let by_index = client.register::<u32>(&p).unwrap();
    let by_matrix = client.register_bmmc::<u32>(&m).unwrap();
    let src = input::<u32>(n);
    let a = client.permute(&by_index, &src).unwrap();
    let b = client.permute(&by_matrix, &src).unwrap();
    assert_eq!(
        a, b,
        "matrix-registered plan diverges from index-registered"
    );
    assert_eq!(a, naive_reference(&p, &src));
    server.drain_and_wait();
}

#[test]
fn server_restart_over_plan_store_completes_with_zero_builds() {
    let dir = std::env::temp_dir().join(format!(
        "hmm-server-conformance-store-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let dir_arg = dir.to_str().unwrap().to_string();

    let n = 1 << 16;
    // Random: γ far above threshold, so registration forces a real
    // König build (the affine families would take the structured path
    // and never build at all).
    let p = families::random(n, 0xabad1dea);
    let src = input::<u32>(n);
    let want = naive_reference(&p, &src);

    // Leg 1: cold store. The build happens here and is persisted.
    {
        let server = ServerProc::spawn(&["--store", &dir_arg]);
        let mut client = server.client();
        let h = client.register::<u32>(&p).unwrap();
        assert_eq!(client.permute(&h, &src).unwrap(), want);
        let stats = client.stats().unwrap();
        assert!(
            stats.builds >= 1,
            "cold leg should have built at least once: {stats:?}"
        );
        server.drain_and_wait();
    }

    // Leg 2: a *new process* over the same store. Same registration,
    // same payload, byte-identical output — and zero builds: the plan
    // comes verified off disk. Both element widths share the store
    // (PlanIr is element-agnostic).
    {
        let server = ServerProc::spawn(&["--store", &dir_arg]);
        let mut client = server.client();
        let h32 = client.register::<u32>(&p).unwrap();
        assert_eq!(client.permute(&h32, &src).unwrap(), want);
        let h64 = client.register::<u64>(&p).unwrap();
        let src64 = input::<u64>(n);
        assert_eq!(
            client.permute(&h64, &src64).unwrap(),
            naive_reference(&p, &src64)
        );

        let stats = client.stats().unwrap();
        assert_eq!(stats.builds, 0, "warm restart must not rebuild: {stats:?}");
        assert!(
            stats.store_hits >= 2,
            "both widths should load from the store: {stats:?}"
        );
        server.drain_and_wait();
    }

    let _ = std::fs::remove_dir_all(&dir);
}
