//! Integration test: Table I is reproduced exactly — measured round counts
//! match the paper's table and measured times match the closed forms — for
//! several machine configurations.

use hmm_bench::experiments::table1;

fn check(n: usize, w: usize, l: usize) {
    let rows = table1::measure(n, w, l).unwrap();
    assert_eq!(rows.len(), 6);
    for r in &rows {
        let (crd, cwr, cord, cowr, cfrd, cfwr) =
            table1::paper_round_counts(r.name).expect("known row");
        let s = &r.summary;
        let ctx = format!("{} (n={n}, w={w}, l={l})", r.name);
        assert_eq!(s.casual_read.rounds, crd, "{ctx}: casual reads");
        assert_eq!(s.casual_write.rounds, cwr, "{ctx}: casual writes");
        assert_eq!(s.coalesced_read.rounds, cord, "{ctx}: coalesced reads");
        assert_eq!(s.coalesced_write.rounds, cowr, "{ctx}: coalesced writes");
        assert_eq!(s.conflict_free_read.rounds, cfrd, "{ctx}: cf reads");
        assert_eq!(s.conflict_free_write.rounds, cfwr, "{ctx}: cf writes");
        assert_eq!(s.shared_casual.rounds, 0, "{ctx}: bank conflicts");
        assert_eq!(r.measured_time, r.predicted_time, "{ctx}: time");
    }
}

#[test]
fn table1_exact_w8() {
    check(1 << 10, 8, 16);
}

#[test]
fn table1_exact_w32_paper_scale_latency() {
    check(1 << 14, 32, 512);
}

#[test]
fn table1_exact_rectangular_size() {
    // Odd power of two: the matrix is r x 2r.
    check(1 << 13, 16, 100);
}

#[test]
fn table1_exact_latency_one() {
    // Degenerate latency: formulas must still hold (l - 1 = 0).
    check(1 << 10, 8, 1);
}

#[test]
fn scheduled_round_total_is_32() {
    let rows = table1::measure(1 << 10, 8, 16).unwrap();
    let sched = rows
        .iter()
        .find(|r| r.name == "Our scheduled permutation")
        .unwrap();
    assert_eq!(sched.summary.total_rounds(), 32);
}
