//! Golden tests for the figure reproductions (Figures 3–6).

use hmm_bench::experiments::figures;
use hmm_perm::families;

#[test]
fn figure3_pipeline_times_match_paper() {
    // The paper's example: same eight requests take l+2 on the DMM and l+4
    // on the UMM.
    for l in [1usize, 5, 100] {
        let d = figures::fig3(l);
        assert_eq!(d.dmm_time, (l + 2) as u64, "DMM at l={l}");
        assert_eq!(d.umm_time, (l + 4) as u64, "UMM at l={l}");
    }
    let d = figures::fig3(5);
    // Stage contents: DMM warp 0 splits {7,5,0} / {15} (bank 3 conflict).
    assert_eq!(d.dmm_stages[0], vec![vec![7, 5, 0], vec![15]]);
    assert_eq!(d.dmm_stages[1], vec![vec![10, 11, 12, 13]]);
    // UMM warp 0 splits by group: {7,5} (g1), {15} (g3), {0} (g0).
    assert_eq!(d.umm_stages[0], vec![vec![7, 5], vec![15], vec![0]]);
    assert_eq!(d.umm_stages[1], vec![vec![10, 11], vec![12, 13]]);
}

#[test]
fn figure4_diagonal_grid_matches_paper() {
    let grid = figures::fig4_grid(4);
    let want = [
        [(0, 0), (0, 1), (0, 2), (0, 3)],
        [(1, 3), (1, 0), (1, 1), (1, 2)],
        [(2, 2), (2, 3), (2, 0), (2, 1)],
        [(3, 1), (3, 2), (3, 3), (3, 0)],
    ];
    for (i, row) in want.iter().enumerate() {
        assert_eq!(grid[i], row.to_vec(), "row {i}");
    }
}

#[test]
fn figure5_has_four_perfect_matchings() {
    let (g, colors) = figures::fig5();
    assert_eq!(g.degree(), 4);
    for color in 0..4 {
        let mut left = vec![false; g.nodes()];
        let mut right = vec![false; g.nodes()];
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            if colors[e] == color {
                assert!(!left[u], "color {color} repeats left node {u}");
                assert!(!right[v], "color {color} repeats right node {v}");
                left[u] = true;
                right[v] = true;
            }
        }
        assert!(left.iter().all(|&x| x), "color {color} incomplete");
    }
}

#[test]
fn figure6_snapshots_respect_step_structure() {
    let p = families::random(16, 2013);
    let (d, snaps) = figures::fig6(&p, 4).unwrap();
    let (r, c) = (d.shape.rows, d.shape.cols);
    assert_eq!((r, c), (4, 4));
    // Step 1 keeps row membership; step 2 keeps column membership; step 3
    // keeps row membership; the final layout realizes P.
    for i in 0..r {
        for j in 0..c {
            let src1 = snaps[1][i * c + j];
            assert_eq!(src1 / c, i, "step 1 moved ({i},{j}) across rows");
        }
    }
    for k in 0..c {
        let mut before: Vec<usize> = (0..r).map(|i| snaps[1][i * c + k]).collect();
        let mut after: Vec<usize> = (0..r).map(|i| snaps[2][i * c + k]).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after, "step 2 changed column {k} membership");
    }
    for (pos, &src) in snaps[3].iter().enumerate() {
        assert_eq!(p.apply(src), pos, "final layout wrong at {pos}");
    }
}

#[test]
fn figure6_works_for_every_16_element_family() {
    for fam in families::Family::ALL {
        let p = fam.build(16, 3).unwrap();
        let (_, snaps) = figures::fig6(&p, 4).unwrap();
        for (pos, &src) in snaps[3].iter().enumerate() {
            assert_eq!(p.apply(src), pos, "{}", fam.name());
        }
    }
}

#[test]
fn renders_are_stable_smoke() {
    assert!(figures::render_fig3(5).contains("total stages = 3"));
    assert!(figures::render_fig3(5).contains("total stages = 5"));
    assert!(figures::render_fig4(4).lines().count() >= 6);
    assert!(figures::render_fig5().matches("perfect matching").count() == 4);
    let p = families::random(16, 1);
    let r6 = figures::render_fig6(&p, 4).unwrap();
    assert!(r6.contains("Input"));
    assert!(r6.contains("After Step 3"));
}
