//! Integration suite for the structured (BMMC) fast paths, plan fusion,
//! and the plan-validation sweep — the engine-level counterpart of
//! `crates/plan/tests/structured.rs`.
//!
//! Pins four things end to end:
//!
//! * **Byte identity** — for every affine paper family × {1K, 64K, 256K}
//!   × both forced backends, engine output equals both the naive
//!   reference and an engine whose planner is forced through the general
//!   König colorer.
//! * **The stats seam** — structured families plan with `builds == 0`
//!   and `plans_structured ≥ 1` on a store-less engine; random still
//!   König-colors (`builds ≥ 1`, `plans_structured == 0`).
//! * **Fusion** — a fused 2-chain executes as ONE scheduled plan (three
//!   sweeps, observed via `run_sweeps_timed`) where the unfused pair
//!   pays six, with identical bytes.
//! * **Corruption rejection** — a bit-flipped gather map is refused with
//!   a typed error at every front door: `decode`, `PlanStore::load`, and
//!   `NativeScheduled::from_plan`.

use hmm_native::{as_native_scheduled, NativeScheduled, Route, SharedEngine};
use hmm_perm::{families, Permutation};
use hmm_plan::{PlanError, PlanIr, PlanStore, StoreKey};

const W: usize = 32;
const SIZES: [usize; 3] = [1 << 10, 1 << 16, 1 << 18];

/// The affine paper families — everything the recognizer must catch.
fn affine_families(n: usize) -> Vec<(&'static str, Permutation)> {
    vec![
        ("identity", families::identical(n)),
        ("shuffle", families::shuffle(n).unwrap()),
        ("transpose", families::transpose_square(n).unwrap()),
        ("bit-reversal", families::bit_reversal(n).unwrap()),
    ]
}

fn naive_reference(p: &Permutation, a: &[u32]) -> Vec<u32> {
    let mut b = vec![0u32; a.len()];
    for (i, &pi) in p.as_slice().iter().enumerate() {
        b[pi] = a[i];
    }
    b
}

fn input(n: usize) -> Vec<u32> {
    (0..n as u32)
        .map(|v| v.wrapping_mul(0x9e37_79b9) ^ 0x5eed)
        .collect()
}

/// Route-forcing through the shared registry seam ([`hmm_native::forced_engine`]).
fn forced_engine(route: Route) -> SharedEngine<u32> {
    hmm_native::forced_engine::<u32>(W, route)
}

/// Structured families × sizes × both forced routes: the fast-path
/// engine output is byte-identical to the naive reference (and therefore
/// to the König-planned engines the conformance suite already pins).
#[test]
fn structured_output_is_byte_identical_on_both_routes() {
    for route in [Route::Scatter, Route::Scheduled] {
        for n in SIZES {
            let engine = forced_engine(route);
            for (name, p) in affine_families(n) {
                let src = input(n);
                let want = naive_reference(&p, &src);
                let plan = engine.plan(&p).unwrap();
                assert_eq!(plan.route(), route, "{name} n={n}");
                let mut dst = vec![0u32; n];
                engine.permute(&p, &src, &mut dst).unwrap();
                assert_eq!(dst, want, "{name} n={n} route={route:?}");
            }
        }
    }
}

/// The acceptance seam: on a store-less scheduled engine, every affine
/// family plans without a König coloring, and random without detection.
#[test]
fn structured_families_plan_without_koenig() {
    let n = 1 << 14;
    let engine = forced_engine(Route::Scheduled);
    let families = affine_families(n);
    for (_, p) in &families {
        engine.plan(p).unwrap();
    }
    let s = engine.stats();
    assert_eq!(s.builds, 0, "affine families must never König-color");
    assert_eq!(s.plans_structured, families.len() as u64);

    let engine = forced_engine(Route::Scheduled);
    engine.plan(&families::random(n, 99)).unwrap();
    let s = engine.stats();
    assert_eq!(s.builds, 1, "random permutations still König-color");
    assert_eq!(s.plans_structured, 0);
}

/// Fused 2-chain: one plan, three sweeps, same bytes as running the two
/// links separately (which costs six sweeps and an extra round trip).
#[test]
fn fused_chain_costs_one_plan_of_three_sweeps() {
    let n = 1 << 14;
    let p1 = families::bit_reversal(n).unwrap();
    let p2 = families::transpose_square(n).unwrap();
    let engine = forced_engine(Route::Scheduled);

    let src = input(n);
    let mut fused_out = vec![0u32; n];
    engine
        .permute_fused(&[&p1, &p2], &src, &mut fused_out)
        .unwrap();

    // Reference: the two links applied separately (two scheduled plans,
    // 3 sweeps each = 6 sweeps total).
    let mut mid = vec![0u32; n];
    let mut chained_out = vec![0u32; n];
    engine.permute(&p1, &src, &mut mid).unwrap();
    engine.permute(&p2, &mid, &mut chained_out).unwrap();
    assert_eq!(fused_out, chained_out);

    // The fused plan is ONE scheduled three-sweep program: a single
    // `run_sweeps_timed` call (which times exactly the three passes)
    // reproduces the result. The unfused pipeline needs two such calls.
    let fused_plan = engine.plan_fused(&[&p1, &p2]).unwrap();
    let sched = as_native_scheduled(&fused_plan)
        .expect("fused affine chain takes the native scheduled route");
    let mut dst = vec![0u32; n];
    let mut scratch = vec![0u32; n];
    let sweeps = sched.run_sweeps_timed(&src, &mut dst, &mut scratch);
    assert_eq!(sweeps.len(), 3, "one fused round trip = three sweeps");
    assert_eq!(dst, fused_out);

    // Both links are affine, so the fusion itself stayed structured.
    let s = engine.stats();
    assert_eq!(s.builds, 0);
    assert!(s.plans_structured >= 3);
}

/// A fused chain of non-affine links still fuses (general ∘ general
/// composes pointwise, then plans once) and stays correct.
#[test]
fn fused_chain_of_general_permutations_is_correct() {
    let n = 1 << 12;
    let p1 = families::random(n, 7);
    let p2 = families::random(n, 8);
    let engine = forced_engine(Route::Scheduled);
    let src = input(n);
    let mut fused_out = vec![0u32; n];
    engine
        .permute_fused(&[&p1, &p2], &src, &mut fused_out)
        .unwrap();
    let mut mid = vec![0u32; n];
    let mut chained_out = vec![0u32; n];
    engine.permute(&p1, &src, &mut mid).unwrap();
    engine.permute(&p2, &mid, &mut chained_out).unwrap();
    assert_eq!(fused_out, chained_out);
    assert!(engine.permute_fused(&[], &src, &mut fused_out).is_err());
}

/// Computed-index acceptance, engine level: structured plans surface
/// `plans_affine`, the config snapshot reports the kernel form, and the
/// computed output is byte-identical to a map-load engine's.
#[test]
fn computed_index_engine_matches_map_load_engine() {
    let n = 1 << 16;
    let computed = forced_engine(Route::Scheduled);
    assert!(
        computed.stats().kernel_computed_index,
        "computed-index kernels are the default"
    );
    let map_load = forced_engine(Route::Scheduled);
    map_load.set_kernel_config(hmm_native::KernelConfig {
        computed_index: false,
        ..hmm_native::KernelConfig::default()
    });
    for (name, p) in affine_families(n) {
        let src = input(n);
        let want = naive_reference(&p, &src);
        let mut a = vec![0u32; n];
        computed.permute(&p, &src, &mut a).unwrap();
        let mut b = vec![0u32; n];
        map_load.permute(&p, &src, &mut b).unwrap();
        assert_eq!(a, want, "{name}: computed vs naive");
        assert_eq!(a, b, "{name}: computed vs map-load");
    }
    let s = computed.stats();
    assert_eq!(s.plans_affine, affine_families(n).len() as u64);
    assert!(!map_load.stats().kernel_computed_index);

    // Random permutations carry no descriptors.
    let engine = forced_engine(Route::Scheduled);
    engine.plan(&families::random(1 << 12, 5)).unwrap();
    assert_eq!(engine.stats().plans_affine, 0);
}

/// Store-shrink acceptance: a structured plan persists descriptor-form
/// (O(log² n) bytes, not the 12n+ of three flat maps), and a cold
/// process loads it back with zero König colorings — the descriptors
/// rebuild the maps — with byte-identical output and `plans_affine`
/// still counted.
#[test]
fn structured_store_entries_are_descriptor_sized_and_cold_load_clean() {
    let n = 1 << 16;
    let dir = std::env::temp_dir().join(format!("hmm-structured-compact-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let p = families::bit_reversal(n).unwrap();
    let src = input(n);
    let want = naive_reference(&p, &src);

    let warm: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
    let mut dst = vec![0u32; n];
    warm.permute(&p, &src, &mut dst).unwrap();
    assert_eq!(dst, want);
    let entries = warm.store().unwrap().entries().unwrap();
    assert_eq!(entries.len(), 1);
    assert_eq!(
        entries[0].bytes as usize,
        hmm_plan::compact_encoded_len(n),
        "structured plans persist compact"
    );
    assert!(
        entries[0].bytes < 1024,
        "a 64K-element structured plan is a few hundred bytes, got {}",
        entries[0].bytes
    );

    let cold: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
    dst.fill(0);
    cold.permute(&p, &src, &mut dst).unwrap();
    assert_eq!(dst, want, "store-served computed output must verify");
    let s = cold.stats();
    assert_eq!(s.builds, 0, "cold load never colors");
    assert_eq!(s.store_hits, 1);
    assert_eq!(s.plans_affine, 1, "loaded plan still carries descriptors");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite-1 regression: a bit-flipped gather map entry must be
/// rejected with a typed error on every front door, never mis-gathered
/// silently by the clamped SIMD tiers.
#[test]
fn corrupted_plans_are_rejected_at_every_front_door() {
    let n = 1 << 10;
    let p = families::random(n, 2024);
    let ir = PlanIr::build(&p, W).unwrap();

    // Front door 1: `NativeScheduled::from_plan` — in-memory corruption
    // of each pass's gather map yields `PlanError::Invalid`.
    for pass in 1..=3 {
        let mut bad = ir.clone();
        bad.corrupt_gather_entry_for_tests(pass, 17);
        let err = NativeScheduled::from_plan(&bad).unwrap_err();
        assert!(
            matches!(err, PlanError::Invalid { .. }),
            "pass {pass}: {err}"
        );
        assert!(!err.to_string().is_empty());
    }

    // Front door 2: `decode` — wire corruption (even a single flipped
    // bit) is caught before a plan object exists.
    let bytes = hmm_plan::encode(&ir);
    let mut corrupt = bytes.clone();
    corrupt[bytes.len() / 2] ^= 0x04;
    assert!(matches!(
        hmm_plan::decode(&corrupt),
        Err(PlanError::Codec { .. })
    ));

    // Front door 3: `PlanStore::load` — the same corruption on disk.
    let dir = std::env::temp_dir().join(format!("hmm-structured-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = PlanStore::open(&dir).unwrap();
    store.save(&ir).unwrap();
    let key = StoreKey::of(&ir);
    let path = store.path_for(&key);
    let mut on_disk = std::fs::read(&path).unwrap();
    let mid = on_disk.len() / 2;
    on_disk[mid] ^= 0x04;
    std::fs::write(&path, &on_disk).unwrap();
    let err = store.load(&key).unwrap_err();
    assert!(matches!(err, PlanError::Codec { .. }), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
