//! Property tests of the cost model itself: invariants that must hold for
//! *any* kernel on *any* machine configuration, independent of the
//! algorithms built on top.

use hmm_machine::{AccessClass, ElemWidth, Hmm, MachineConfig, Word};
use hmm_offperm::analysis;
use hmm_offperm::driver::{run_on, Algorithm};
use hmm_perm::{distribution, families, Permutation};
use proptest::prelude::*;

fn perm_strategy() -> impl Strategy<Value = Permutation> {
    (8u32..=12, any::<u64>()).prop_map(|(k, seed)| families::random(1 << k, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 4 as an exact statement: the D-designated time on the pure
    /// model equals the closed form with the *measured* distribution.
    #[test]
    fn lemma4_exact_for_random_permutations(p in perm_strategy()) {
        let n = p.len();
        let w = 32usize;
        let l = 64usize;
        let input: Vec<Word> = (0..n as Word).collect();
        let mut hmm = Hmm::new(MachineConfig::pure(w, l)).unwrap();
        let (report, _) = run_on(&mut hmm, Algorithm::DDesignated, &p, &input).unwrap();
        let gamma = distribution(&p, w);
        // The casual round's stages are the exact per-warp group sum =
        // gamma * n/w (distribution is a mean over n/w warps).
        let expected = analysis::conventional_time(n, w, l, gamma);
        prop_assert_eq!(report.time, expected);
    }

    /// Theorem 9: scheduled time is a pure function of (n, w, l) — it
    /// cannot depend on the permutation.
    #[test]
    fn theorem9_permutation_independence(p in perm_strategy(), l in 1usize..256) {
        let n = p.len();
        let w = 8usize;
        let input: Vec<Word> = (0..n as Word).collect();
        let mut hmm = Hmm::new(MachineConfig::pure(w, l)).unwrap();
        let (report, _) = run_on(&mut hmm, Algorithm::Scheduled, &p, &input).unwrap();
        prop_assert_eq!(report.time, analysis::scheduled_time(n, w, l));
    }

    /// The total ledger time is always the sum of its rounds' times, and
    /// every algorithm respects the lower bound.
    #[test]
    fn ledger_consistency_and_lower_bound(p in perm_strategy()) {
        let n = p.len();
        let (w, l) = (8usize, 16usize);
        let input: Vec<Word> = (0..n as Word).collect();
        for alg in Algorithm::ALL {
            let mut hmm = Hmm::new(MachineConfig::pure(w, l)).unwrap();
            let (report, _) = run_on(&mut hmm, alg, &p, &input).unwrap();
            let per_round: u64 = hmm.ledger().records().iter().map(|r| r.time).sum();
            prop_assert_eq!(report.time, per_round);
            prop_assert!(report.time >= analysis::lower_bound(n, w, l));
        }
    }

    /// Cache-model sandwich: with the cache enabled, every global round's
    /// stage count lies between the no-cache count (all hits) and
    /// `miss_stages` times it (all misses).
    #[test]
    fn cached_cost_is_bounded_by_hit_and_miss_extremes(p in perm_strategy()) {
        let n = p.len();
        let input: Vec<Word> = (0..n as Word).collect();
        let base = MachineConfig::gtx680(ElemWidth::F32);
        let mut nocache = base.clone();
        nocache.cache = None;
        let run = |cfg: &MachineConfig| {
            let mut hmm = Hmm::new(cfg.clone()).unwrap();
            run_on(&mut hmm, Algorithm::DDesignated, &p, &input).unwrap();
            hmm.ledger()
                .records()
                .iter()
                .map(|r| r.stages)
                .collect::<Vec<u64>>()
        };
        let plain = run(&nocache);
        let cached = run(&base);
        let m = base.miss_stages as u64;
        for (i, (&c, &pl)) in cached.iter().zip(&plain).enumerate() {
            prop_assert!(c >= pl, "round {i}: cached {c} < all-hit {pl}");
            prop_assert!(c <= pl * m, "round {i}: cached {c} > all-miss {}", pl * m);
        }
    }

    /// Classification invariants: coalesced rounds have exactly one
    /// cost-segment per warp under the pure rule (stages == warps), and
    /// casual rounds have more.
    #[test]
    fn coalesced_rounds_have_one_stage_per_warp(p in perm_strategy()) {
        let n = p.len();
        let input: Vec<Word> = (0..n as Word).collect();
        let mut hmm = Hmm::new(MachineConfig::pure(32, 16)).unwrap();
        run_on(&mut hmm, Algorithm::DDesignated, &p, &input).unwrap();
        for r in hmm.ledger().records() {
            match r.class {
                AccessClass::Coalesced => prop_assert_eq!(r.stages, r.warps),
                AccessClass::Casual => prop_assert!(r.stages > r.warps),
                AccessClass::ConflictFree => prop_assert_eq!(r.stages, r.warps),
            }
        }
    }

    /// Element width monotonicity under the byte rule: f64 streaming never
    /// costs less than f32 streaming for the same kernel.
    #[test]
    fn doubles_cost_at_least_floats(seed in any::<u64>()) {
        let n = 1 << 10;
        let p = families::random(n, seed);
        let input: Vec<Word> = (0..n as Word).collect();
        let time = |elem: ElemWidth| {
            let mut cfg = MachineConfig::gtx680(elem);
            cfg.cache = None;
            let mut hmm = Hmm::new(cfg).unwrap();
            run_on(&mut hmm, Algorithm::Scheduled, &p, &input).unwrap().0.time
        };
        prop_assert!(time(ElemWidth::F64) >= time(ElemWidth::F32));
    }
}

/// Non-proptest: the shared-dispatch flag only rescales shared rounds.
#[test]
fn parallel_dispatch_affects_only_shared_rounds() {
    let n = 1 << 12;
    let p = families::bit_reversal(n).unwrap();
    let input: Vec<Word> = (0..n as Word).collect();
    let run = |flag: bool| {
        let cfg = MachineConfig {
            parallel_shared_dispatch: flag,
            ..MachineConfig::pure(32, 64)
        };
        let mut hmm = Hmm::new(cfg).unwrap();
        run_on(&mut hmm, Algorithm::Scheduled, &p, &input).unwrap();
        let records: Vec<_> = hmm.ledger().records().to_vec();
        records
    };
    let paper = run(false);
    let parallel = run(true);
    assert_eq!(paper.len(), parallel.len());
    for (a, b) in paper.iter().zip(&parallel) {
        match a.space {
            hmm_machine::Space::Global => assert_eq!(a.time, b.time, "global round changed"),
            hmm_machine::Space::Shared => {
                assert!(
                    b.time <= a.time,
                    "shared round grew: {} > {}",
                    b.time,
                    a.time
                )
            }
        }
    }
}
